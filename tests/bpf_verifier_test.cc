// Verifier tests: every rejection class the paper's isolation story relies
// on (§4.3), plus acceptance of all shipped policies.
#include <gtest/gtest.h>

#include "src/bpf/assembler.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/map/map.h"
#include "src/policies/builtin.h"

namespace syrup::bpf {
namespace {

// Assembles `source`, resolving declared maps with freshly created ones.
Program Load(std::string_view source) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  Program prog;
  prog.name = assembled->name;
  prog.insns = assembled->insns;
  for (const MapSlot& slot : assembled->map_slots) {
    EXPECT_FALSE(slot.is_extern);
    prog.maps.push_back(CreateMap(slot.spec).value());
  }
  return prog;
}

Status VerifyPacket(std::string_view source) {
  return Verify(Load(source), ProgramContext::kPacket);
}

testing::AssertionResult Rejects(std::string_view source,
                                 std::string_view why) {
  const Status status = VerifyPacket(source);
  if (status.ok()) {
    return testing::AssertionFailure() << "program unexpectedly verified";
  }
  if (status.message().find(why) == std::string::npos) {
    return testing::AssertionFailure()
           << "expected rejection reason '" << why << "', got: "
           << status.ToString();
  }
  return testing::AssertionSuccess();
}

// --- acceptance ------------------------------------------------------------------

TEST(Verifier, AcceptsTrivialProgram) {
  EXPECT_TRUE(VerifyPacket("mov r0, 0\nexit\n").ok());
}

TEST(Verifier, AcceptsBoundsCheckedPacketRead) {
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r0, [r1+0]
    exit
  out:
    mov r0, PASS
    exit
  )").ok());
}

TEST(Verifier, AcceptsReversedBoundsCompare) {
  // `if (pkt_end >= pkt + 8) read;` — refinement on the taken edge.
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 8
    jge r2, r3, read
    mov r0, PASS
    exit
  read:
    ldxdw r0, [r1+0]
    exit
  )").ok());
}

TEST(Verifier, AcceptsNullCheckedMapDeref) {
  EXPECT_TRUE(VerifyPacket(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, out
    ldxdw r0, [r0+0]
    exit
  out:
    mov r0, 0
    exit
  )").ok());
}

TEST(Verifier, AcceptsBoundedLoop) {
  EXPECT_TRUE(VerifyPacket(R"(
    mov r6, 0
    mov r0, 0
  loop:
    jge r6, 16, done
    add r0, 2
    add r6, 1
    ja loop
  done:
    exit
  )").ok());
}

TEST(Verifier, AcceptsAllShippedPolicies) {
  for (const std::string& source :
       {RoundRobinPolicyAsm(6), HashPolicyAsm(6), ScanAvoidPolicyAsm(6),
        SitaPolicyAsm(6), TokenPolicyAsm(), MicaHomePolicyAsm(8),
        ConstIndexPolicyAsm(0)}) {
    EXPECT_TRUE(VerifyPacket(source).ok())
        << "policy failed verification:\n" << source
        << "\n" << VerifyPacket(source).ToString();
  }
}

TEST(Verifier, AcceptsThreadContextScalars) {
  Program prog = Load(R"(
    .ctx thread
    mov r0, r1
    add r0, r2
    exit
  )");
  EXPECT_TRUE(Verify(prog, ProgramContext::kThread).ok());
}

TEST(Verifier, ReportsStats) {
  Program prog = Load("mov r0, 0\nexit\n");
  VerifierStats stats;
  ASSERT_TRUE(Verify(prog, ProgramContext::kPacket, {}, &stats).ok());
  EXPECT_EQ(stats.visited_insns, 2u);
}

// --- rejections -------------------------------------------------------------------

TEST(Verifier, RejectsPacketReadWithoutBoundsCheck) {
  // The reason the paper passes (pkt_start, pkt_end) pairs: unchecked
  // dereference must not load.
  EXPECT_TRUE(Rejects(R"(
    ldxw r0, [r1+0]
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsReadBeyondCheckedRange) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxdw r0, [r1+0]   ; checked 4 bytes, reads 8
    exit
  out:
    mov r0, PASS
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsCheckOnWrongBranch) {
  // Refinement must apply to the correct edge only.
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, read   ; TAKEN edge means pkt+4 > pkt_end: NOT safe
    mov r0, PASS
    exit
  read:
    ldxw r0, [r1+0]
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsNegativePacketOffset) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r0, [r1-4]
    exit
  out:
    mov r0, PASS
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsPacketWrite) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    mov r4, 0
    stxw [r1+0], r4
  out:
    mov r0, PASS
    exit
  )", "read-only"));
}

TEST(Verifier, RejectsMapDerefWithoutNullCheck) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    ldxdw r0, [r0+0]
    exit
  )", "NULL check"));
}

TEST(Verifier, RejectsProvenNullDeref) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jne r0, 0, out
    ldxdw r0, [r0+0]   ; this branch proved r0 == NULL
    exit
  out:
    mov r0, 0
    exit
  )", "NULL pointer dereference"));
}

TEST(Verifier, RejectsMapValueOutOfBounds) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, out
    ldxdw r3, [r0+8]   ; value is 8 bytes; offset 8 is out of bounds
    mov r0, r3
    exit
  out:
    mov r0, 0
    exit
  )", "map value access out of bounds"));
}

TEST(Verifier, RejectsUninitializedRegisterRead) {
  EXPECT_TRUE(Rejects("mov r0, r5\nexit\n", "uninitialized register"));
}

TEST(Verifier, RejectsUninitializedStackRead) {
  EXPECT_TRUE(Rejects(R"(
    ldxdw r0, [r10-8]
    exit
  )", "uninitialized stack"));
}

TEST(Verifier, RejectsPartiallyInitializedStackRead) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, 1
    stxw [r10-8], r3   ; 4 of the 8 bytes
    ldxdw r0, [r10-8]
    exit
  )", "uninitialized stack"));
}

TEST(Verifier, RejectsStackOutOfBounds) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, 1
    stxw [r10-516], r3
    mov r0, 0
    exit
  )", "stack access out of bounds"));
  EXPECT_TRUE(Rejects(R"(
    mov r3, 1
    stxw [r10+0], r3
    mov r0, 0
    exit
  )", "stack access out of bounds"));
}

TEST(Verifier, RejectsWriteToFramePointer) {
  EXPECT_TRUE(Rejects("mov r10, 0\nmov r0, 0\nexit\n", "frame pointer"));
}

TEST(Verifier, RejectsFallOffEnd) {
  EXPECT_TRUE(Rejects("mov r0, 0\n", "falls off the end"));
}

TEST(Verifier, RejectsExitWithUninitializedR0) {
  EXPECT_TRUE(Rejects("exit\n", "non-scalar or uninitialized r0"));
}

TEST(Verifier, RejectsExitWithPointerR0) {
  EXPECT_TRUE(Rejects("mov r0, r1\nexit\n",
                      "non-scalar or uninitialized r0"));
}

TEST(Verifier, RejectsUnboundedLoop) {
  // The liveness guarantee: exploration budget exhausts (the paper's
  // "verifier analyzes up to 1 million instructions").
  VerifierOptions options;
  options.max_visited_insns = 10'000;
  Program prog = Load(R"(
    mov r0, 0
  loop:
    add r0, 1
    ja loop
  )");
  const Status status = Verify(prog, ProgramContext::kPacket, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("too complex"), std::string::npos);
}

TEST(Verifier, RejectsDataDependentLoop) {
  VerifierOptions options;
  options.max_visited_insns = 50'000;
  // Loop bound comes from packet data: unknown, so exploration re-forks
  // until the budget trips.
  Program prog = Load(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r4, [r1+0]
    mov r0, 0
  loop:
    jge r0, r4, out
    add r0, 1
    ja loop
  out:
    mov r0, 0
    exit
  )");
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket, options).ok());
}

TEST(Verifier, RejectsHelperWithWrongMapRegister) {
  EXPECT_TRUE(Rejects(R"(
    mov r1, 0
    mov r2, r10
    add r2, -4
    mov r3, 7
    stxw [r10-4], r3
    call map_lookup_elem
    mov r0, 0
    exit
  )", "map reference"));
}

TEST(Verifier, RejectsHelperKeyFromUninitializedStack) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    mov r0, 0
    exit
  )", "uninitialized stack"));
}

TEST(Verifier, RejectsHelperKeyNotAPointer) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    ldmapfd r1, m
    mov r2, 1234
    call map_lookup_elem
    mov r0, 0
    exit
  )", "stack or map value pointer"));
}

TEST(Verifier, RejectsTailCallOnNonProgArray) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r1, 0
    ldmapfd r2, m
    mov r3, 0
    call tail_call
    mov r0, 0
    exit
  )", "prog_array"));
}

TEST(Verifier, RejectsUnknownHelper) {
  EXPECT_TRUE(Rejects("call 999\nmov r0, 0\nexit\n", "unknown helper"));
}

TEST(Verifier, RejectsPointerScalarComparison) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, 5
    jgt r1, r3, +1
    mov r0, 0
    exit
  )", "comparison between pointer and scalar"));
}

TEST(Verifier, RejectsPointerImmediateComparison) {
  EXPECT_TRUE(Rejects(R"(
    jgt r1, 5, +1
    mov r0, 0
    exit
  )", "comparison between pointer and immediate"));
}

TEST(Verifier, RejectsArithmeticOnPktEnd) {
  EXPECT_TRUE(Rejects(R"(
    add r2, 4
    mov r0, 0
    exit
  )", "arithmetic on pkt_end"));
}

TEST(Verifier, RejectsMulOnPointer) {
  EXPECT_TRUE(Rejects(R"(
    mul r1, 2
    mov r0, 0
    exit
  )", "ALU op on pointer"));
}

TEST(Verifier, RejectsPointerAddUnknownScalar) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r4, [r1+0]
    add r1, r4          ; unknown scalar offset: range would be lost
    mov r0, 0
    exit
  out:
    mov r0, PASS
    exit
  )", "pointer arithmetic with unknown"));
}

TEST(Verifier, RejectsAtomicOnStackIsAllowedButPacketIsNot) {
  EXPECT_TRUE(Rejects(R"(
    mov r4, 1
    xadddw [r1+0], r4
    mov r0, 0
    exit
  )", "atomic op on packet"));
}

TEST(Verifier, RejectsStoringPointerToStack) {
  EXPECT_TRUE(Rejects(R"(
    stxdw [r10-8], r1
    mov r0, 0
    exit
  )", "expected scalar"));
}

TEST(Verifier, RejectsJumpOutOfBounds) {
  Program prog;
  prog.name = "bad_jump";
  prog.insns = {Insn{Op::kJa, 0, 0, 100, 0}, Insn{Op::kExit, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket).ok());
}

TEST(Verifier, RejectsBadMapIndex) {
  Program prog;
  prog.name = "bad_map";
  prog.insns = {Insn{Op::kLdMapFd, 1, 0, 0, 3},  // no maps loaded
                Insn{Op::kMovImm, 0, 0, 0, 0},
                Insn{Op::kExit, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket).ok());
}

TEST(Verifier, RejectsEmptyProgram) {
  Program prog;
  prog.name = "empty";
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket).ok());
}

TEST(Verifier, RejectsPacketAccessInThreadContext) {
  // In the thread context r1/r2 are scalars, not packet pointers.
  Program prog = Load(R"(
    .ctx thread
    ldxw r0, [r1+0]
    exit
  )");
  EXPECT_FALSE(Verify(prog, ProgramContext::kThread).ok());
}

TEST(Verifier, ErrorsNameTheProgramAndInstruction) {
  Program prog = Load(".name culprit\nldxw r0, [r1+0]\nexit\n");
  const Status status = Verify(prog, ProgramContext::kPacket);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("culprit"), std::string::npos);
  EXPECT_NE(status.message().find("insn 0"), std::string::npos);
  EXPECT_NE(status.message().find("ldxw"), std::string::npos);
}

}  // namespace
}  // namespace syrup::bpf
