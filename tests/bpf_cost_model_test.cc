// Cost-model and WCET-pass tests.
//
// Three property families:
//  * model sanity — the checked-in DefaultCostModel orders tiers and map
//    kinds the way the hardware does, and CalibratedCostModel only ever
//    widens it;
//  * boundedness — every builtin policy and every shipping example policy
//    verifies with a finite wcet_insns and a concrete hottest path, and the
//    side-effect facts (write/atomic sets, cache blockers, lints) say what
//    the programs actually do;
//  * cost-vs-reality — for JIT-able policies, the measured per-decision
//    time at the deployment's effective tier must not exceed the
//    calibrated wcet_ns for that tier (the soundness direction operators
//    rely on: measured <= predicted). Failures print the hottest path
//    disassembled.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/bpf/assembler.h"
#include "src/bpf/compiler.h"
#include "src/bpf/cost_model.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/jit.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/map/map.h"
#include "src/policies/builtin.h"

namespace syrup::bpf {
namespace {

constexpr size_t kInterp = static_cast<size_t>(CostTier::kInterpret);
constexpr size_t kComp = static_cast<size_t>(CostTier::kCompiled);
constexpr size_t kNat = static_cast<size_t>(CostTier::kNative);

// Assembles a policy and materializes its map slots the way `syrupctl
// lint`/`cost` do: extern maps (bound at deploy time) are substituted with
// a generic hash map, the most expensive kind, keeping bounds conservative.
Program BuildProgram(const std::string& source) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  Program prog;
  prog.name = assembled->name;
  prog.insns = assembled->insns;
  for (const MapSlot& slot : assembled->map_slots) {
    if (slot.is_extern) {
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 1024;
      prog.maps.push_back(CreateMap(spec).value());
      continue;
    }
    prog.maps.push_back(CreateMap(slot.spec).value());
  }
  return prog;
}

ProgramContext ContextOf(const std::string& source) {
  return source.find(".ctx thread") != std::string::npos
             ? ProgramContext::kThread
             : ProgramContext::kPacket;
}

std::string DisassemblePath(const Program& prog,
                            const std::vector<uint32_t>& path) {
  std::string out;
  for (uint32_t pc : path) {
    out += "  " + std::to_string(pc) + ": " + Disassemble(prog.insns[pc]) +
           "\n";
  }
  return out;
}

TEST(CostModelTest, DefaultModelOrdersTiersAndMapKinds) {
  const CostModel& m = DefaultCostModel();
  // Hash probes cost more than array indexing; per-CPU arrays sit between.
  const auto array = static_cast<size_t>(MapType::kArray);
  const auto hash = static_cast<size_t>(MapType::kHash);
  const auto percpu = static_cast<size_t>(MapType::kPerCpuArray);
  EXPECT_GT(m.lookup_ns[hash], m.lookup_ns[array]);
  EXPECT_GT(m.update_ns[hash], m.update_ns[array]);
  EXPECT_GE(m.lookup_ns[percpu], m.lookup_ns[array]);
  // Every opcode must be priced, and the tiers must be strictly ordered:
  // interpretation pays dispatch, the pre-decoded form less, machine code
  // least.
  for (size_t op = 1; op < kNumOps; ++op) {
    EXPECT_GT(m.op_ns[kInterp][op], 0.0) << "op " << op;
    EXPECT_GT(m.op_ns[kInterp][op], m.op_ns[kComp][op]) << "op " << op;
    EXPECT_GT(m.op_ns[kComp][op], m.op_ns[kNat][op]) << "op " << op;
  }
  EXPECT_GT(m.exec_overhead_ns[kInterp], m.exec_overhead_ns[kComp]);
  EXPECT_GT(m.exec_overhead_ns[kComp], m.exec_overhead_ns[kNat]);
}

TEST(CostModelTest, CalibratedModelNeverCheaperThanDefault) {
  const CostModel& def = DefaultCostModel();
  const CostModel cal = CalibratedCostModel();
  for (size_t t = 0; t < kNumCostTiers; ++t) {
    for (size_t op = 0; op < kNumOps; ++op) {
      ASSERT_GE(cal.op_ns[t][op], def.op_ns[t][op])
          << "tier " << t << " op " << op;
    }
    ASSERT_GE(cal.exec_overhead_ns[t], def.exec_overhead_ns[t]);
  }
  for (size_t k = 0; k < kNumMapTypes; ++k) {
    ASSERT_GE(cal.lookup_ns[k], def.lookup_ns[k]);
    ASSERT_GE(cal.update_ns[k], def.update_ns[k]);
    ASSERT_GE(cal.delete_ns[k], def.delete_ns[k]);
  }
  EXPECT_GE(cal.random_ns, def.random_ns);
  EXPECT_GE(cal.ktime_ns, def.ktime_ns);
}

// --- boundedness over the builtin catalog ------------------------------------

std::vector<std::pair<std::string, std::string>> BuiltinPolicies() {
  return {
      {"round_robin", RoundRobinPolicyAsm(4)},
      {"hash", HashPolicyAsm(4)},
      {"scan_avoid", ScanAvoidPolicyAsm(4)},
      {"sita", SitaPolicyAsm(4)},
      {"token", TokenPolicyAsm()},
      {"least_loaded", LeastLoadedPolicyAsm(6, "/syrup/test/load")},
      {"power_of_two", PowerOfTwoPolicyAsm(4, "/syrup/test/load")},
      {"const_index", ConstIndexPolicyAsm(1)},
      {"mica_home", MicaHomePolicyAsm(4)},
      {"var_header", VarHeaderPolicyAsm(4)},
      {"get_priority", GetPriorityThreadPolicyAsm("/syrup/test/types")},
  };
}

TEST(CostModelTest, EveryBuiltinPolicyHasFiniteWcet) {
  for (const auto& [name, source] : BuiltinPolicies()) {
    const Program prog = BuildProgram(source);
    AnalysisFacts facts;
    ASSERT_TRUE(
        Verify(prog, ContextOf(source), {}, nullptr, &facts).ok())
        << name;
    const CostFacts& cost = facts.cost;
    EXPECT_TRUE(cost.bounded) << name;
    EXPECT_GT(cost.wcet_insns, 0u) << name;
    EXPECT_GE(cost.wcet_insns, cost.best_insns) << name;
    EXPECT_FALSE(cost.hottest_path.empty()) << name;
    EXPECT_LE(cost.hottest_path.size(), cost.wcet_insns) << name;
    for (size_t t = 0; t < kNumCostTiers; ++t) {
      EXPECT_GT(cost.wcet_ns[t], 0.0) << name << " tier " << t;
      EXPECT_GE(cost.wcet_ns[t], cost.best_ns[t]) << name << " tier " << t;
    }
    // Faster tiers must predict faster wcets for the same paths.
    EXPECT_GT(cost.wcet_ns[kInterp], cost.wcet_ns[kComp]) << name;
    EXPECT_GT(cost.wcet_ns[kComp], cost.wcet_ns[kNat]) << name;
    // Every pc on the hottest path must be a real instruction.
    for (uint32_t pc : cost.hottest_path) {
      ASSERT_LT(pc, prog.insns.size()) << name;
    }
  }
}

TEST(CostModelTest, EveryExamplePolicyHasFiniteWcetOrIsRejected) {
  const std::string dir =
      std::string(SYRUP_SOURCE_DIR) + "/examples/policies/";
  for (const char* file : {"round_robin.s", "var_header.s",
                           "priority_drop.s", "broken_no_bounds_check.s"}) {
    std::ifstream in(dir + file);
    ASSERT_TRUE(in.good()) << dir + file;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    const Program prog = BuildProgram(source);
    AnalysisFacts facts;
    const Status status =
        Verify(prog, ContextOf(source), {}, nullptr, &facts);
    if (std::string(file).rfind("broken_", 0) == 0) {
      EXPECT_FALSE(status.ok()) << file;
      continue;
    }
    ASSERT_TRUE(status.ok()) << file << ": " << status;
    EXPECT_TRUE(facts.cost.bounded) << file;
    EXPECT_GT(facts.cost.wcet_insns, 0u) << file;
  }
}

// --- side-effect facts -------------------------------------------------------

TEST(CostModelTest, WriteAndAtomicSetsNameTheMutatedMaps) {
  // Token decrements its bucket with lock xadd: an in-place atomic write.
  {
    const Program prog = BuildProgram(TokenPolicyAsm());
    AnalysisFacts facts;
    ASSERT_TRUE(
        Verify(prog, ProgramContext::kPacket, {}, nullptr, &facts).ok());
    EXPECT_FALSE(facts.write_maps.empty());
    EXPECT_FALSE(facts.atomic_maps.empty());
    EXPECT_FALSE(facts.cacheable);
    EXPECT_FALSE(facts.cache_blockers.empty());
  }
  // Round robin bumps its cursor with a plain store through the looked-up
  // value pointer: a write, but not an atomic one.
  {
    const Program prog = BuildProgram(RoundRobinPolicyAsm(4));
    AnalysisFacts facts;
    ASSERT_TRUE(
        Verify(prog, ProgramContext::kPacket, {}, nullptr, &facts).ok());
    EXPECT_FALSE(facts.write_maps.empty());
    EXPECT_TRUE(facts.atomic_maps.empty());
    EXPECT_FALSE(facts.cacheable);
    ASSERT_FALSE(facts.cache_blockers.empty());
    EXPECT_NE(facts.cache_blockers[0].reason.find("map value pointer"),
              std::string::npos);
  }
  // MICA home steering is a pure function of the packet: cacheable, no
  // writes, no blockers.
  {
    const Program prog = BuildProgram(MicaHomePolicyAsm(4));
    AnalysisFacts facts;
    ASSERT_TRUE(
        Verify(prog, ProgramContext::kPacket, {}, nullptr, &facts).ok());
    EXPECT_TRUE(facts.write_maps.empty());
    EXPECT_TRUE(facts.atomic_maps.empty());
    EXPECT_TRUE(facts.cacheable);
    EXPECT_TRUE(facts.cache_blockers.empty());
  }
}

// --- lints -------------------------------------------------------------------

TEST(CostModelTest, RedundantLookupLintFires) {
  // Two identical lookups of the same map with the same stack key and no
  // intervening write: the second should be flagged.
  Program prog;
  prog.name = "double_lookup";
  prog.maps.push_back(CreateMap({.type = MapType::kArray,
                                 .max_entries = 4}).value());
  prog.insns = {
      {Op::kStW, 10, 0, -4, 1},
      {Op::kLdMapFd, 1, 0, 0, 0},
      {Op::kMovReg, 2, 10, 0, 0},
      {Op::kAddImm, 2, 0, 0, -4},
      {Op::kCall, 0, 0, 0, 1},
      {Op::kLdMapFd, 1, 0, 0, 0},
      {Op::kMovReg, 2, 10, 0, 0},
      {Op::kAddImm, 2, 0, 0, -4},
      {Op::kCall, 0, 0, 0, 1},
      {Op::kMovImm, 0, 0, 0, 0},
      {Op::kExit, 0, 0, 0, 0},
  };
  const VerifyReport report = VerifyAll(prog, ProgramContext::kThread);
  ASSERT_TRUE(report.ok()) << report.status();
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.message.find("redundant map lookup") != std::string::npos) {
      found = true;
      EXPECT_EQ(d.severity, DiagSeverity::kWarning);
      EXPECT_EQ(d.pc, 8u);  // the second call
    }
  }
  EXPECT_TRUE(found);
}

TEST(CostModelTest, PathOverBudgetLintFires) {
  // A concrete 600-iteration loop: verifiable, but far over the tightest
  // packet-hook budget at the compiled tier.
  Program prog;
  prog.name = "big_loop";
  prog.insns = {
      {Op::kMovImm, 6, 0, 0, 0},
      {Op::kMovImm, 0, 0, 0, 0},
      {Op::kJgeImm, 6, 0, 3, 600},
      {Op::kAddImm, 0, 0, 0, 3},
      {Op::kAddImm, 6, 0, 0, 1},
      {Op::kJa, 0, 0, -4, 0},
      {Op::kExit, 0, 0, 0, 0},
  };
  const VerifyReport report = VerifyAll(prog, ProgramContext::kPacket);
  ASSERT_TRUE(report.ok()) << report.status();
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.message.find("packet-hook budget") != std::string::npos) {
      found = true;
      EXPECT_EQ(d.severity, DiagSeverity::kWarning);
    }
  }
  EXPECT_TRUE(found);
  // The same program in thread context sits well under the thread budget:
  // no lint.
  const VerifyReport thread_report =
      VerifyAll(prog, ProgramContext::kThread);
  ASSERT_TRUE(thread_report.ok());
  for (const Diagnostic& d : thread_report.diagnostics) {
    EXPECT_EQ(d.message.find("budget"), std::string::npos) << d.message;
  }
}

// --- cost vs reality ---------------------------------------------------------

// Measures the per-decision wall time of `prog` at its effective tier
// (native when the JIT can take it, else compiled) and asserts it stays
// within the calibrated wcet for that tier, with headroom for scheduling
// noise. Calibration and measurement run on the same host under the same
// instrumentation (ASan inflates both), so the comparison is stable.
void AssertMeasuredWithinPredicted(const std::string& name,
                                   const std::string& source) {
  const Program prog = BuildProgram(source);
  const ProgramContext context = ContextOf(source);
  const CostModel calibrated = CalibratedCostModel();
  VerifierOptions options;
  options.cost_model = &calibrated;
  AnalysisFacts facts;
  ASSERT_TRUE(Verify(prog, context, options, nullptr, &facts).ok()) << name;
  ASSERT_TRUE(facts.cost.bounded) << name;

  CompileOptions copts;
  copts.assume_verified = true;
  copts.facts = &facts;
  auto compiled = Compile(prog, context, copts);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  auto jit = JitCompile(*compiled);
  if (jit.ok()) {
    compiled->native = std::move(jit).value();
  }
  const CostTier tier = CostTierOf(EffectiveExecMode(&*compiled));
  const double predicted_ns = facts.cost.wcet_ns[static_cast<size_t>(tier)];

  ExecEnv env;
  uint32_t rand_state = 1;
  env.random_u32 = [&rand_state]() {
    rand_state = rand_state * 1664525u + 1013904223u;
    return rand_state;
  };
  uint64_t fake_time = 0;
  env.ktime_ns = [&fake_time]() { return fake_time += 10; };
  CompiledExecutor executor(env);

  std::vector<uint8_t> wire(96, 0);
  const auto start = reinterpret_cast<uint64_t>(wire.data());
  const uint64_t arg1 = context == ProgramContext::kPacket ? start : 7;
  const uint64_t arg2 =
      context == ProgramContext::kPacket ? start + wire.size() : 1;
  const bool is_packet = context == ProgramContext::kPacket;

  constexpr int kIters = 20'000;
  double best_per_run_ns = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      auto result = executor.Run(*compiled, arg1, arg2, is_packet);
      ASSERT_TRUE(result.ok()) << name;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double per_run =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
    best_per_run_ns = std::min(best_per_run_ns, per_run);
  }
  // 1.5x: calibration margin already covers steady-state cost; the slack
  // absorbs residual jitter without masking a real model violation (an
  // underestimate shows up as multiples, not percentages).
  EXPECT_LE(best_per_run_ns, predicted_ns * 1.5)
      << name << ": measured " << best_per_run_ns << " ns/run at the "
      << CostTierName(tier) << " tier exceeds predicted wcet "
      << predicted_ns << " ns\nhottest path:\n"
      << DisassemblePath(prog, facts.cost.hottest_path);
}

TEST(CostModelTest, MeasuredCostStaysWithinPredictedWcet) {
  AssertMeasuredWithinPredicted("round_robin", RoundRobinPolicyAsm(6));
  AssertMeasuredWithinPredicted("mica_home", MicaHomePolicyAsm(6));
  AssertMeasuredWithinPredicted("var_header", VarHeaderPolicyAsm(6));
  AssertMeasuredWithinPredicted("token", TokenPolicyAsm());
  AssertMeasuredWithinPredicted("scan_avoid", ScanAvoidPolicyAsm(6));
}

}  // namespace
}  // namespace syrup::bpf
