// Integration tests: assert the *shape* of every paper figure — who wins,
// roughly by how much, and where behaviour flips — on shortened runs.
// The bench binaries regenerate the full curves.
#include <gtest/gtest.h>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

RocksDbExperimentConfig QuickRocks() {
  RocksDbExperimentConfig config;
  config.warmup = 100 * kMillisecond;
  config.measure = 400 * kMillisecond;
  return config;
}

// --- Fig. 2: 100% GET, vanilla vs round robin ----------------------------------------

TEST(Fig2, VanillaDropsAndExplodesAtHighLoadRoundRobinDoesNot) {
  RocksDbExperimentConfig config = QuickRocks();
  config.load_rps = 400'000;
  config.socket_policy = SocketPolicyKind::kVanilla;
  const RocksDbResult vanilla = RunRocksDbExperiment(config);
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  const RocksDbResult rr = RunRocksDbExperiment(config);

  EXPECT_GT(vanilla.drop_fraction, 0.005);  // Fig. 2b: visible drops
  EXPECT_LT(rr.drop_fraction, 0.001);
  EXPECT_GT(vanilla.p99_us, 1000);          // Fig. 2a: vanilla explodes
  EXPECT_LT(rr.p99_us, 200);                // RR still sub-200us
}

TEST(Fig2, BothPoliciesFineAtLowLoad) {
  RocksDbExperimentConfig config = QuickRocks();
  config.load_rps = 100'000;
  config.socket_policy = SocketPolicyKind::kVanilla;
  const RocksDbResult vanilla = RunRocksDbExperiment(config);
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  const RocksDbResult rr = RunRocksDbExperiment(config);
  EXPECT_LT(vanilla.p99_us, 200);
  EXPECT_LT(rr.p99_us, 100);
  EXPECT_EQ(vanilla.drop_fraction, 0.0);
}

TEST(Fig2, RoundRobinSustainsHigherLoad) {
  // "a load 80% higher than the default policy" with sub-200us tails.
  RocksDbExperimentConfig config = QuickRocks();
  config.load_rps = 420'000;
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  const RocksDbResult rr = RunRocksDbExperiment(config);
  EXPECT_LT(rr.p99_us, 300);
  EXPECT_GT(rr.throughput_rps, 410'000);
}

// --- Fig. 6: 99.5% GET / 0.5% SCAN -----------------------------------------------------

TEST(Fig6, PolicyOrderingAtModerateLoad) {
  RocksDbExperimentConfig config = QuickRocks();
  config.get_fraction = 0.995;
  config.load_rps = 150'000;

  config.socket_policy = SocketPolicyKind::kVanilla;
  const RocksDbResult vanilla = RunRocksDbExperiment(config);
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  const RocksDbResult rr = RunRocksDbExperiment(config);
  config.socket_policy = SocketPolicyKind::kScanAvoid;
  const RocksDbResult scan_avoid = RunRocksDbExperiment(config);
  config.socket_policy = SocketPolicyKind::kSita;
  const RocksDbResult sita = RunRocksDbExperiment(config);

  // Head-of-line blocking keeps vanilla and RR SCAN-dominated (>500us);
  // SCAN Avoid stays under 150us (paper: 8x better than vanilla); SITA is
  // at least as good.
  EXPECT_GT(vanilla.p99_us, 500);
  EXPECT_GT(rr.p99_us, 500);
  EXPECT_LT(scan_avoid.p99_us, 150);
  EXPECT_LT(sita.p99_us, 150);
  EXPECT_GT(vanilla.p99_us / scan_avoid.p99_us, 8.0);
}

TEST(Fig6, SitaOutlastsScanAvoid) {
  // Paper: SITA holds <150us up to ~310k, 100% beyond SCAN Avoid's range.
  RocksDbExperimentConfig config = QuickRocks();
  config.get_fraction = 0.995;
  config.load_rps = 310'000;
  config.socket_policy = SocketPolicyKind::kScanAvoid;
  const RocksDbResult scan_avoid = RunRocksDbExperiment(config);
  config.socket_policy = SocketPolicyKind::kSita;
  const RocksDbResult sita = RunRocksDbExperiment(config);
  EXPECT_LT(sita.p99_us, 150);
  EXPECT_GT(scan_avoid.p99_us, 300);  // SCAN Avoid has degraded by now
}

// --- Fig. 7: token-based QoS ------------------------------------------------------------

TEST(Fig7, TokensProtectLsLatencyAtCostOfBeThroughput) {
  TokenQosConfig config;
  config.warmup = 100 * kMillisecond;
  config.measure = 400 * kMillisecond;
  config.ls_load_rps = 100'000;
  config.be_load_rps = 300'000;

  config.token_policy = true;
  const TokenQosResult token = RunTokenQosExperiment(config);
  config.token_policy = false;
  const TokenQosResult rr = RunTokenQosExperiment(config);

  // BE under tokens is capped by gifted leftovers (~350k - LS); under RR it
  // gets its full offered load.
  EXPECT_LT(token.be_throughput_rps, 270'000);
  EXPECT_GT(token.be_throughput_rps, 180'000);
  EXPECT_GT(rr.be_throughput_rps, token.be_throughput_rps);
  // LS latency is at least as good under tokens.
  EXPECT_LE(token.ls_p99_us, rr.ls_p99_us * 1.1);
}

TEST(Fig7, BeThroughputTracksLeftoverTokens) {
  TokenQosConfig config;
  config.warmup = 100 * kMillisecond;
  config.measure = 300 * kMillisecond;
  config.token_policy = true;
  // BE gets roughly (token_rate - LS) at every split.
  for (double ls : {50'000.0, 250'000.0}) {
    config.ls_load_rps = ls;
    config.be_load_rps = 400'000 - ls;
    const TokenQosResult result = RunTokenQosExperiment(config);
    const double expected_be = config.token_rate_per_sec - ls;
    EXPECT_NEAR(result.be_throughput_rps, expected_be, expected_be * 0.25)
        << "ls=" << ls;
    // LS itself is never throttled below its own load.
    EXPECT_NEAR(result.ls_throughput_rps, ls, ls * 0.05);
  }
}

// --- Fig. 8: cross-layer scheduling -------------------------------------------------------

TEST(Fig8, CrossLayerBeatsEitherSingleLayer) {
  RocksDbExperimentConfig config;
  config.warmup = 100 * kMillisecond;
  config.measure = 600 * kMillisecond;
  config.get_fraction = 0.5;
  config.num_threads = 36;
  config.num_cores = 6;
  config.load_rps = 8'000;

  config.socket_policy = SocketPolicyKind::kScanAvoid;
  config.thread_sched = ThreadSchedKind::kCfs;
  const RocksDbResult request_only = RunRocksDbExperiment(config);

  config.socket_policy = SocketPolicyKind::kVanilla;
  config.thread_sched = ThreadSchedKind::kGhostGetPriority;
  const RocksDbResult thread_only = RunRocksDbExperiment(config);

  config.socket_policy = SocketPolicyKind::kScanAvoid;
  const RocksDbResult both = RunRocksDbExperiment(config);

  // Paper: thread-scheduling-only suffers socket HoL blocking (>800us GET
  // p99 even at low load); request-only degrades by 8k; combined stays low.
  EXPECT_GT(thread_only.p99_get_us, 500);
  EXPECT_LT(both.p99_get_us, 500);
  EXPECT_LT(both.p99_get_us, request_only.p99_get_us);
  EXPECT_LT(both.p99_get_us, thread_only.p99_get_us);
}

TEST(Fig8, ThreadSchedulingAloneSuffersEvenAtLowLoad) {
  RocksDbExperimentConfig config;
  config.warmup = 100 * kMillisecond;
  config.measure = 600 * kMillisecond;
  config.get_fraction = 0.5;
  config.num_threads = 36;
  config.num_cores = 6;
  config.load_rps = 2'000;
  config.socket_policy = SocketPolicyKind::kVanilla;
  config.thread_sched = ThreadSchedKind::kGhostGetPriority;
  const RocksDbResult result = RunRocksDbExperiment(config);
  EXPECT_GT(result.p99_get_us, 250);  // GETs stuck behind SCANs in sockets
}

// --- Fig. 9: MICA across hooks --------------------------------------------------------------

MicaExperimentConfig QuickMica(MicaVariant variant, double load) {
  MicaExperimentConfig config;
  config.variant = variant;
  config.load_rps = load;
  config.warmup = 50 * kMillisecond;
  config.measure = 150 * kMillisecond;
  return config;
}

TEST(Fig9, SwRedirectSaturatesFirst) {
  // At 2.2 MRPS the original (app-layer redirect) has exploded; both Syrup
  // variants are still healthy.
  const MicaResult original =
      RunMicaExperiment(QuickMica(MicaVariant::kSwRedirect, 2'200'000));
  const MicaResult sw =
      RunMicaExperiment(QuickMica(MicaVariant::kSyrupSw, 2'200'000));
  const MicaResult hw =
      RunMicaExperiment(QuickMica(MicaVariant::kSyrupHw, 2'200'000));
  EXPECT_GT(original.p999_us, 1000);
  EXPECT_LT(sw.p999_us, 400);
  EXPECT_LT(hw.p999_us, 200);
}

TEST(Fig9, HwOutlastsSw) {
  // At 3.1 MRPS kernel-level steering has exploded; NIC offload holds.
  const MicaResult sw =
      RunMicaExperiment(QuickMica(MicaVariant::kSyrupSw, 3'100'000));
  const MicaResult hw =
      RunMicaExperiment(QuickMica(MicaVariant::kSyrupHw, 3'100'000));
  EXPECT_GT(sw.p999_us, 1000);
  EXPECT_LT(hw.p999_us, 400);
}

TEST(Fig9, OrderingHoldsForBothMixes) {
  for (double get_fraction : {0.5, 0.95}) {
    MicaExperimentConfig config = QuickMica(MicaVariant::kSwRedirect,
                                            1'500'000);
    config.get_fraction = get_fraction;
    const MicaResult original = RunMicaExperiment(config);
    config.variant = MicaVariant::kSyrupSw;
    const MicaResult sw = RunMicaExperiment(config);
    config.variant = MicaVariant::kSyrupHw;
    const MicaResult hw = RunMicaExperiment(config);
    EXPECT_LT(sw.p999_us, original.p999_us) << "mix " << get_fraction;
    EXPECT_LT(hw.p999_us, sw.p999_us) << "mix " << get_fraction;
  }
}

TEST(Fig9, BytecodeDeploymentMatchesNativeShape) {
  // The same experiment with the actual untrusted policy file deployed via
  // syrupd (assemble -> verify -> attach) reproduces the native result.
  MicaExperimentConfig config = QuickMica(MicaVariant::kSyrupSw, 2'000'000);
  const MicaResult native = RunMicaExperiment(config);
  config.use_bytecode = true;
  const MicaResult bytecode = RunMicaExperiment(config);
  EXPECT_NEAR(bytecode.p999_us, native.p999_us, native.p999_us * 0.2);
  EXPECT_NEAR(bytecode.throughput_rps, native.throughput_rps,
              native.throughput_rps * 0.05);
}

// --- determinism across the whole harness ----------------------------------------------------

TEST(Determinism, IdenticalSeedsIdenticalResults) {
  RocksDbExperimentConfig config = QuickRocks();
  config.load_rps = 200'000;
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  config.measure = 200 * kMillisecond;
  const RocksDbResult a = RunRocksDbExperiment(config);
  const RocksDbResult b = RunRocksDbExperiment(config);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.drop_fraction, b.drop_fraction);
}

TEST(Determinism, DifferentSeedsDifferentNoise) {
  RocksDbExperimentConfig config = QuickRocks();
  config.load_rps = 200'000;
  config.socket_policy = SocketPolicyKind::kVanilla;
  config.measure = 200 * kMillisecond;
  config.seed = 1;
  const RocksDbResult a = RunRocksDbExperiment(config);
  config.seed = 2;
  const RocksDbResult b = RunRocksDbExperiment(config);
  EXPECT_NE(a.p99_us, b.p99_us);  // hash imbalance is seed-dependent
}


TEST(LateBinding, NoPolicyMatchesBestEarlyPolicies) {
  // §6.3 extension: late binding with no policy rivals SITA at moderate
  // load on the Fig. 6 workload.
  RocksDbExperimentConfig config = QuickRocks();
  config.get_fraction = 0.995;
  config.load_rps = 150'000;
  config.late_binding = true;
  const RocksDbResult late = RunRocksDbExperiment(config);
  config.late_binding = false;
  config.socket_policy = SocketPolicyKind::kVanilla;
  const RocksDbResult early_vanilla = RunRocksDbExperiment(config);
  EXPECT_LT(late.p99_us, 100);
  EXPECT_GT(early_vanilla.p99_us / late.p99_us, 5.0);
}

}  // namespace
}  // namespace syrup
