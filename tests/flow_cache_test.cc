// Flow-decision cache tests: the verifier's purity/read-set facts, the
// cache table itself, and the syrupd dispatch integration (hits, misses,
// map-version invalidation, epoch flush on redeploy, transparency).
#include <gtest/gtest.h>

#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/core/flow_cache.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/net/stack.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

Packet MakePacket(uint16_t dst_port, uint32_t key_hash,
                  uint16_t src_port = 20'000) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a0000ff;
  pkt.tuple.src_port = src_port;
  pkt.tuple.dst_port = dst_port;
  pkt.SetHeader(ReqType::kGet, 1, key_hash, 1, 0);
  return pkt;
}

bpf::AnalysisFacts FactsFor(const std::string& source) {
  auto assembled = bpf::Assemble(source).value();
  bpf::Program prog;
  prog.name = assembled.name;
  prog.insns = assembled.insns;
  for (const bpf::MapSlot& slot : assembled.map_slots) {
    if (slot.is_extern) {
      MapSpec spec;  // externs resolve at deploy; a stand-in map is fine
      spec.max_entries = 16;
      prog.maps.push_back(CreateMap(spec).value());
    } else {
      prog.maps.push_back(CreateMap(slot.spec).value());
    }
  }
  bpf::AnalysisFacts facts;
  EXPECT_TRUE(
      bpf::Verify(prog, assembled.context, {}, nullptr, &facts).ok());
  return facts;
}

// --- verifier purity summary ------------------------------------------------

TEST(FlowCacheFacts, MicaHomeIsPureAndReadsKeyHashBytes) {
  const bpf::AnalysisFacts facts = FactsFor(MicaHomePolicyAsm(6));
  EXPECT_TRUE(facts.cacheable);
  // The program reads exactly the 4 key-hash bytes at offset 20.
  EXPECT_EQ(facts.pkt_read_mask, 0xF00000u);
  EXPECT_TRUE(facts.read_maps.empty());
}

TEST(FlowCacheFacts, HashPolicyReadsPortBytes) {
  const bpf::AnalysisFacts facts = FactsFor(HashPolicyAsm(6));
  EXPECT_TRUE(facts.cacheable);
  EXPECT_EQ(facts.pkt_read_mask, 0xFu);  // src/dst port bytes [0, 4)
  EXPECT_TRUE(facts.read_maps.empty());
}

TEST(FlowCacheFacts, VarHeaderVariableOffsetReadIsCacheable) {
  const bpf::AnalysisFacts facts = FactsFor(VarHeaderPolicyAsm(6));
  EXPECT_TRUE(facts.cacheable);
  // Byte 5 (the length) plus the whole provable span of the variable read.
  EXPECT_NE(facts.pkt_read_mask & (uint64_t{1} << 5), 0u);
  EXPECT_NE(facts.pkt_read_mask & (uint64_t{1} << 35), 0u);
}

TEST(FlowCacheFacts, LeastLoadedIsCacheableWithMapReadSet) {
  const bpf::AnalysisFacts facts =
      FactsFor(LeastLoadedPolicyAsm(4, "/syrup/t/load"));
  EXPECT_TRUE(facts.cacheable);
  ASSERT_EQ(facts.read_maps.size(), 1u);
  EXPECT_EQ(facts.read_maps[0], 0);
}

TEST(FlowCacheFacts, MapValueWriteIsUncacheable) {
  // Round robin stores the bumped index back through the value pointer.
  EXPECT_FALSE(FactsFor(RoundRobinPolicyAsm(6)).cacheable);
}

TEST(FlowCacheFacts, AtomicMapMutationIsUncacheable) {
  // Token consumes a token with xadddw on the map value.
  EXPECT_FALSE(FactsFor(TokenPolicyAsm()).cacheable);
}

TEST(FlowCacheFacts, RandomHelperIsUncacheable) {
  EXPECT_FALSE(
      FactsFor(PowerOfTwoPolicyAsm(4, "/syrup/t/load")).cacheable);
}

TEST(FlowCacheFacts, ThreadContextIsUncacheable) {
  // Thread classifiers have no packet to key on.
  EXPECT_FALSE(
      FactsFor(GetPriorityThreadPolicyAsm("/syrup/t/types")).cacheable);
}

TEST(FlowCacheFacts, ScanAvoidRandomProbeIsUncacheable) {
  // scan_avoid probes random sockets via get_prandom_u32; two identical
  // packets legitimately get different decisions.
  EXPECT_FALSE(FactsFor(ScanAvoidPolicyAsm(6)).cacheable);
}

// --- the table itself -------------------------------------------------------

TEST(FlowDecisionCache, KeyIncludesPortLengthAndMaskedBytes) {
  const Packet pkt = MakePacket(9000, 0xdeadbeef);
  const PacketView view = PacketView::Of(pkt);
  const FlowDecisionCache::Key key =
      FlowDecisionCache::MakeKey(view, 0xF00000u);
  EXPECT_EQ(key.len, 4u + 4u);  // port + length + 4 masked bytes
  uint16_t port;
  std::memcpy(&port, key.bytes, sizeof(port));
  EXPECT_EQ(port, 9000);
  uint32_t key_hash;
  std::memcpy(&key_hash, key.bytes + 4, sizeof(key_hash));
  EXPECT_EQ(key_hash, 0xdeadbeefu);
}

TEST(FlowDecisionCache, MaskedBytesBeyondPacketEndAreAbsent) {
  const Packet pkt = MakePacket(9000, 7);
  PacketView view = PacketView::Of(pkt);
  view.end = view.start + 10;  // short packet
  const FlowDecisionCache::Key key =
      FlowDecisionCache::MakeKey(view, 0xF00000u);  // bytes 20-23: past end
  EXPECT_EQ(key.len, 4u);  // port + length only
}

TEST(FlowDecisionCache, HitRequiresExactKeyEpochAndVersion) {
  FlowDecisionCache cache;
  const Packet pkt = MakePacket(9000, 42);
  const FlowDecisionCache::Key key =
      FlowDecisionCache::MakeKey(PacketView::Of(pkt), 0xF00000u);
  cache.Insert(key, Decision{3}, /*epoch=*/1, /*version_sum=*/10);

  Decision d = 0;
  bool stale = false;
  EXPECT_TRUE(cache.Lookup(key, 1, 10, &d, &stale));
  EXPECT_EQ(d, 3u);

  // A read-set map changed: stale, entry self-invalidates.
  EXPECT_FALSE(cache.Lookup(key, 1, 11, &d, &stale));
  EXPECT_TRUE(stale);
  // And it stays gone (no longer even a stale match).
  EXPECT_FALSE(cache.Lookup(key, 1, 10, &d, &stale));
  EXPECT_FALSE(stale);

  // Epoch flush behaves the same way.
  cache.Insert(key, Decision{4}, /*epoch=*/1, /*version_sum=*/10);
  EXPECT_FALSE(cache.Lookup(key, 2, 10, &d, &stale));
  EXPECT_TRUE(stale);
}

TEST(FlowDecisionCache, DistinctFlowsDoNotFalselyHit) {
  FlowDecisionCache cache;
  for (uint32_t flow = 0; flow < 512; ++flow) {
    const Packet pkt = MakePacket(9000, flow);
    const auto key =
        FlowDecisionCache::MakeKey(PacketView::Of(pkt), 0xF00000u);
    cache.Insert(key, Decision{flow % 6}, 1, 0);
  }
  // Whatever eviction happened, a surviving entry must carry its own
  // flow's decision, never a colliding flow's.
  size_t hits = 0;
  for (uint32_t flow = 0; flow < 512; ++flow) {
    const Packet pkt = MakePacket(9000, flow);
    const auto key =
        FlowDecisionCache::MakeKey(PacketView::Of(pkt), 0xF00000u);
    Decision d = 0;
    bool stale = false;
    if (cache.Lookup(key, 1, 0, &d, &stale)) {
      EXPECT_EQ(d, flow % 6) << "false hit for flow " << flow;
      ++hits;
    }
  }
  EXPECT_GT(hits, 400u);  // 512 flows in 4096 slots: most survive
}

TEST(FlowDecisionCache, ClearDropsEverything) {
  FlowDecisionCache cache;
  const Packet pkt = MakePacket(9000, 1);
  const auto key =
      FlowDecisionCache::MakeKey(PacketView::Of(pkt), 0xF00000u);
  cache.Insert(key, Decision{2}, 1, 0);
  EXPECT_EQ(cache.OccupiedSlots(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.OccupiedSlots(), 0u);
  Decision d = 0;
  bool stale = false;
  EXPECT_FALSE(cache.Lookup(key, 1, 0, &d, &stale));
}

// --- frequency sketch -------------------------------------------------------

TEST(FrequencySketch, DoorkeeperAbsorbsFirstTouch) {
  FrequencySketch sketch;
  sketch.Resize(1024);
  EXPECT_EQ(sketch.Estimate(42), 0u);
  sketch.Touch(42);
  // One occurrence: only the doorkeeper bit, the counters stay clean.
  EXPECT_EQ(sketch.Estimate(42), 1u);
  sketch.Touch(42);
  EXPECT_EQ(sketch.Estimate(42), 2u);
}

TEST(FrequencySketch, EstimateTracksRepeatedTouches) {
  FrequencySketch sketch;
  sketch.Resize(4096);
  for (int i = 0; i < 10; ++i) {
    sketch.Touch(7);
  }
  // 1 doorkeeper absorption + 9 counter bumps.
  EXPECT_EQ(sketch.Estimate(7), 10u);
  // An untouched key reads ~0 (counter collisions can add at most noise,
  // and with 10 touches in 4096 counters there is none).
  EXPECT_LE(sketch.Estimate(123456789), 1u);
}

TEST(FrequencySketch, SaturatesAtMaxEstimate) {
  FrequencySketch sketch;
  sketch.Resize(1024);
  for (int i = 0; i < 100; ++i) {
    sketch.Touch(7);
  }
  EXPECT_EQ(sketch.Estimate(7), FrequencySketch::kMaxEstimate + 1);
}

TEST(FrequencySketch, AgingHalvesCountersAndClearsDoorkeeper) {
  FrequencySketch sketch;
  sketch.Resize(64);  // sample budget: 8 * 64 = 512
  for (int i = 0; i < 12; ++i) {
    sketch.Touch(99);
  }
  const uint32_t before = sketch.Estimate(99);
  ASSERT_GE(before, 10u);
  while (sketch.agings() == 0) {
    sketch.Touch(1234567);
  }
  // Counters halved, doorkeeper cleared: recent frequency, not all-time.
  EXPECT_LT(sketch.Estimate(99), before);
  EXPECT_LE(sketch.Estimate(99), before / 2);
}

// --- admission, eviction, and adaptive sizing -------------------------------

FlowDecisionCache::Key KeyFor(uint32_t flow) {
  const Packet pkt = MakePacket(9000, flow);
  return FlowDecisionCache::MakeKey(PacketView::Of(pkt), 0xF00000u);
}

TEST(FlowCacheAdmission, HotFlowsSurviveOneShotStorm) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;  // 16 slots
  config.admission = true;
  config.adaptive = false;
  FlowDecisionCache cache(config);
  FlowCacheCounters counters = FlowCacheCounters::Detached();
  cache.BindCounters(counters);

  // Build frequency for 8 resident flows: every re-insert is an access
  // the sketch records.
  for (int round = 0; round < 10; ++round) {
    for (uint32_t flow = 0; flow < 8; ++flow) {
      cache.Insert(KeyFor(flow), Decision{flow}, 1, 0);
    }
  }
  // A one-shot storm: 64 flows seen exactly once each. Their estimate (1,
  // the doorkeeper bit) never out-counts a resident, so residents stay.
  for (uint32_t flow = 1000; flow < 1064; ++flow) {
    cache.Insert(KeyFor(flow), Decision{flow}, 1, 0);
  }
  EXPECT_GT(counters.admission_rejects->value, 0u);
  for (uint32_t flow = 0; flow < 8; ++flow) {
    Decision d = 0;
    bool stale = false;
    EXPECT_TRUE(cache.Lookup(KeyFor(flow), 1, 0, &d, &stale))
        << "hot flow " << flow << " evicted by a one-shot storm";
    EXPECT_EQ(d, flow);
  }
}

TEST(FlowCacheAdmission, DisabledAdmissionLetsTheStormEvict) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;
  config.admission = false;
  config.adaptive = false;
  FlowDecisionCache cache(config);
  FlowCacheCounters counters = FlowCacheCounters::Detached();
  cache.BindCounters(counters);

  for (int round = 0; round < 10; ++round) {
    for (uint32_t flow = 0; flow < 8; ++flow) {
      cache.Insert(KeyFor(flow), Decision{flow}, 1, 0);
    }
  }
  for (uint32_t flow = 1000; flow < 1064; ++flow) {
    cache.Insert(KeyFor(flow), Decision{flow}, 1, 0);
  }
  // Without the filter every full-window insert evicts a resident.
  EXPECT_GT(counters.evictions->value, 0u);
  EXPECT_EQ(counters.admission_rejects->value, 0u);
  size_t survivors = 0;
  for (uint32_t flow = 0; flow < 8; ++flow) {
    Decision d = 0;
    bool stale = false;
    if (cache.Lookup(KeyFor(flow), 1, 0, &d, &stale)) {
      ++survivors;
    }
  }
  EXPECT_LT(survivors, 8u);
}

TEST(FlowCacheAdmission, StaleEpochResidentsAreFreeRealEstate) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;
  config.admission = true;
  config.adaptive = false;
  FlowDecisionCache cache(config);
  // Fill the table under epoch 1 with well-known flows.
  for (int round = 0; round < 5; ++round) {
    for (uint32_t flow = 0; flow < 16; ++flow) {
      cache.Insert(KeyFor(flow), Decision{flow}, 1, 0);
    }
  }
  // Epoch 2 newcomers (estimate 1) must displace epoch-1 residents no
  // matter how hot those were: a stale entry can never hit again.
  for (uint32_t flow = 100; flow < 116; ++flow) {
    cache.Insert(KeyFor(flow), Decision{flow}, 2, 0);
  }
  size_t resident = 0;
  for (uint32_t flow = 100; flow < 116; ++flow) {
    Decision d = 0;
    bool stale = false;
    if (cache.Lookup(KeyFor(flow), 2, 0, &d, &stale)) {
      ++resident;
    }
  }
  EXPECT_GT(resident, 0u);
}

TEST(FlowCacheAdaptive, GrowsToTheLiveFlowPopulation) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;
  config.admission = true;
  config.adaptive = true;
  FlowDecisionCache cache(config);
  FlowCacheCounters counters = FlowCacheCounters::Detached();
  cache.BindCounters(counters);
  ASSERT_EQ(cache.capacity(), FlowDecisionCache::kMinSlots);

  constexpr uint32_t kFlows = 256;
  for (int pass = 0; pass < 20; ++pass) {
    for (uint32_t flow = 0; flow < kFlows; ++flow) {
      Decision d = 0;
      bool stale = false;
      if (!cache.Lookup(KeyFor(flow), 1, 0, &d, &stale)) {
        cache.Insert(KeyFor(flow), Decision{flow % 6}, 1, 0);
      }
    }
  }
  EXPECT_GT(counters.resizes->value, 0u);
  EXPECT_GE(cache.capacity(), 2 * static_cast<size_t>(kFlows));
  EXPECT_EQ(counters.capacity->value,
            static_cast<int64_t>(cache.capacity()));
  // Steady state: the grown table holds (nearly) the whole population.
  size_t hits = 0;
  for (uint32_t flow = 0; flow < kFlows; ++flow) {
    Decision d = 0;
    bool stale = false;
    if (cache.Lookup(KeyFor(flow), 1, 0, &d, &stale)) {
      ++hits;
    }
  }
  EXPECT_GT(hits, kFlows * 9 / 10);
}

TEST(FlowCacheAdaptive, ShrinksWhenThePopulationCollapses) {
  FlowCacheConfig config;
  config.capacity = 4096;
  config.adaptive = true;
  FlowDecisionCache cache(config);
  FlowCacheCounters counters = FlowCacheCounters::Detached();
  cache.BindCounters(counters);
  cache.Insert(KeyFor(1), Decision{3}, 1, 0);

  // One live flow, many windows of lookups: the table is >4x oversized and
  // must give memory back (but never below the shrink floor).
  for (int i = 0; i < 20'000; ++i) {
    Decision d = 0;
    bool stale = false;
    if (!cache.Lookup(KeyFor(1), 1, 0, &d, &stale)) {
      cache.Insert(KeyFor(1), Decision{3}, 1, 0);
    }
  }
  EXPECT_LT(cache.capacity(), 4096u);
  EXPECT_GE(cache.capacity(), FlowDecisionCache::kShrinkFloor);
  EXPECT_GT(counters.resizes->value, 0u);
  // The live entry survived the shrink's live-first rehash.
  Decision d = 0;
  bool stale = false;
  EXPECT_TRUE(cache.Lookup(KeyFor(1), 1, 0, &d, &stale));
  EXPECT_EQ(d, 3u);
}

TEST(FlowCacheAdaptive, FixedSizeWhenDisabled) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;
  config.adaptive = false;
  FlowDecisionCache cache(config);
  for (int pass = 0; pass < 10; ++pass) {
    for (uint32_t flow = 0; flow < 512; ++flow) {
      Decision d = 0;
      bool stale = false;
      if (!cache.Lookup(KeyFor(flow), 1, 0, &d, &stale)) {
        cache.Insert(KeyFor(flow), Decision{flow % 6}, 1, 0);
      }
    }
  }
  EXPECT_EQ(cache.capacity(), FlowDecisionCache::kMinSlots);
}

TEST(FlowCacheConfig_, ConfigureRoundsAndResets) {
  FlowCacheConfig config;
  config.capacity = 100;
  FlowDecisionCache cache(config);
  EXPECT_EQ(cache.capacity(), 128u);  // rounded to a power of two
  cache.Insert(KeyFor(1), Decision{2}, 1, 0);
  EXPECT_EQ(cache.OccupiedSlots(), 1u);
  config.capacity = 64;
  cache.Configure(config);
  EXPECT_EQ(cache.capacity(), 64u);
  EXPECT_EQ(cache.OccupiedSlots(), 0u);  // reconfigure drops entries
}

// --- syrupd dispatch integration --------------------------------------------

class FlowCacheDispatchTest : public testing::Test {
 protected:
  FlowCacheDispatchTest() : stack_(sim_, StackConfig{}),
                            syrupd_(sim_, &stack_) {}

  uint64_t CacheCounter(std::string_view name) {
    return syrupd_.StatsSnapshot().CounterValue(
        "syrupd", "socket_select", std::string("flow_cache.") + name.data());
  }

  Simulator sim_;
  HostStack stack_;
  Syrupd syrupd_;
};

TEST_F(FlowCacheDispatchTest, RepeatFlowServedFromCache) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  const Packet pkt = MakePacket(9000, 123);
  const PacketView view = PacketView::Of(pkt);
  const Decision first = stack_.hooks().socket_select(view);
  const Decision second = stack_.hooks().socket_select(view);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, 123u % 6u);
  EXPECT_EQ(CacheCounter("misses"), 1u);
  EXPECT_EQ(CacheCounter("hits"), 1u);
  // The policy itself only ran once: the second decision skipped the VM.
  EXPECT_EQ(syrupd_.StatsSnapshot().CounterValue("a", "socket_select",
                                                 "policy.invocations"),
            1u);
  // Dispatch accounting stays consistent regardless of the serving tier.
  EXPECT_EQ(syrupd_.dispatch_stats(Hook::kSocketSelect).dispatched, 2u);
}

TEST_F(FlowCacheDispatchTest, DistinctFlowsEachMissThenHit) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  for (uint32_t flow = 0; flow < 32; ++flow) {
    const Packet pkt = MakePacket(9000, flow);
    EXPECT_EQ(stack_.hooks().socket_select(PacketView::Of(pkt)), flow % 6);
  }
  EXPECT_EQ(CacheCounter("misses"), 32u);
  for (uint32_t flow = 0; flow < 32; ++flow) {
    const Packet pkt = MakePacket(9000, flow);
    EXPECT_EQ(stack_.hooks().socket_select(PacketView::Of(pkt)), flow % 6);
  }
  EXPECT_EQ(CacheCounter("hits"), 32u);
}

TEST_F(FlowCacheDispatchTest, MapUpdateInvalidatesCachedDecision) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  // Seed the load map before deploying: index 1 is least loaded.
  MapSpec spec;
  spec.max_entries = 2;
  spec.name = "load";
  MapHandle load = client.MapCreate(spec, "/syrup/a/load").value();
  ASSERT_TRUE(load.Update(0, 10).ok());
  ASSERT_TRUE(load.Update(1, 5).ok());
  ASSERT_TRUE(
      syrupd_
          .DeployPolicyFile(app, LeastLoadedPolicyAsm(2, "/syrup/a/load"),
                            Hook::kSocketSelect)
          .ok());

  const Packet pkt = MakePacket(9000, 7);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(stack_.hooks().socket_select(view), 1u);  // miss, cached
  EXPECT_EQ(stack_.hooks().socket_select(view), 1u);  // hit
  EXPECT_EQ(CacheCounter("hits"), 1u);

  // Shift the load: index 0 becomes least loaded. The version stamp makes
  // the cached decision self-invalidate; the re-executed policy sees the
  // new map contents.
  ASSERT_TRUE(load.Update(1, 50).ok());
  EXPECT_EQ(stack_.hooks().socket_select(view), 0u);
  EXPECT_EQ(CacheCounter("invalidations"), 1u);
  EXPECT_EQ(stack_.hooks().socket_select(view), 0u);  // cached again
  EXPECT_EQ(CacheCounter("hits"), 2u);
}

TEST_F(FlowCacheDispatchTest, RedeployFlushesViaEpoch) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  const uint64_t epoch0 = syrupd_.hook_epoch(Hook::kSocketSelect);
  const Packet pkt = MakePacket(9000, 9);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(stack_.hooks().socket_select(view), 3u);  // 9 % 6
  EXPECT_EQ(stack_.hooks().socket_select(view), 3u);
  EXPECT_EQ(CacheCounter("hits"), 1u);

  // Redeploy with a different executor count: stale decisions from the
  // old program must not survive.
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(2),
                                       Hook::kSocketSelect)
                  .ok());
  EXPECT_GT(syrupd_.hook_epoch(Hook::kSocketSelect), epoch0);
  EXPECT_EQ(stack_.hooks().socket_select(view), 1u);  // 9 % 2, re-executed
  EXPECT_EQ(CacheCounter("hits"), 1u);  // no new hit for the old entry
}

TEST_F(FlowCacheDispatchTest, UncacheablePolicyFallsBackTransparently) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, RoundRobinPolicyAsm(4),
                                       Hook::kSocketSelect)
                  .ok());
  const Packet pkt = MakePacket(9000, 1);
  const PacketView view = PacketView::Of(pkt);
  // Round robin must advance on every dispatch — memoizing it would break
  // its semantics, which is exactly why the verifier rejects caching it.
  EXPECT_EQ(stack_.hooks().socket_select(view), 1u);
  EXPECT_EQ(stack_.hooks().socket_select(view), 2u);
  EXPECT_EQ(stack_.hooks().socket_select(view), 3u);
  EXPECT_EQ(CacheCounter("uncacheable"), 3u);
  EXPECT_EQ(CacheCounter("hits"), 0u);
  EXPECT_EQ(CacheCounter("misses"), 0u);
}

TEST_F(FlowCacheDispatchTest, NativePoliciesAreNeverCached) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(app, std::make_shared<MicaHomePolicy>(6),
                                      Hook::kSocketSelect)
                  .ok());
  const Packet pkt = MakePacket(9000, 5);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(stack_.hooks().socket_select(view), 5u);
  EXPECT_EQ(stack_.hooks().socket_select(view), 5u);
  EXPECT_EQ(CacheCounter("uncacheable"), 2u);
  EXPECT_EQ(CacheCounter("hits"), 0u);
}

TEST_F(FlowCacheDispatchTest, DisabledCacheExecutesEveryPacket) {
  syrupd_.set_flow_cache_enabled(false);
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  const Packet pkt = MakePacket(9000, 123);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(stack_.hooks().socket_select(view), 3u);
  EXPECT_EQ(stack_.hooks().socket_select(view), 3u);
  EXPECT_EQ(CacheCounter("hits"), 0u);
  EXPECT_EQ(CacheCounter("misses"), 0u);
  EXPECT_EQ(CacheCounter("uncacheable"), 0u);
  EXPECT_EQ(syrupd_.StatsSnapshot().CounterValue("a", "socket_select",
                                                 "policy.invocations"),
            2u);
}

TEST_F(FlowCacheDispatchTest, ShortPacketKeyedByLength) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  Packet pkt = MakePacket(9000, 123);
  const PacketView full = PacketView::Of(pkt);
  PacketView truncated = full;
  truncated.end = truncated.start + 20;  // fails the program's bounds check

  EXPECT_EQ(stack_.hooks().socket_select(full), 3u);
  // Same masked bytes would be absent; the length in the key separates
  // the two flows, so the short packet gets its own (PASS) decision.
  EXPECT_EQ(stack_.hooks().socket_select(truncated), kPass);
  EXPECT_EQ(stack_.hooks().socket_select(truncated), kPass);
  EXPECT_EQ(stack_.hooks().socket_select(full), 3u);
  EXPECT_EQ(CacheCounter("misses"), 2u);
  EXPECT_EQ(CacheCounter("hits"), 2u);
}

TEST_F(FlowCacheDispatchTest, EvictionAndResizeCountersReachSnapshot) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;
  config.admission = false;
  config.adaptive = true;
  syrupd_.set_flow_cache_config(config);
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  // Push far more flows than the 16-slot table holds, repeatedly: the
  // overflow shows up as evictions, and the adaptive sweep grows the table
  // (both under {"syrupd","socket_select"} in the snapshot).
  for (int pass = 0; pass < 10; ++pass) {
    for (uint32_t flow = 0; flow < 256; ++flow) {
      const Packet pkt = MakePacket(9000, flow);
      (void)stack_.hooks().socket_select(PacketView::Of(pkt));
    }
  }
  EXPECT_GT(CacheCounter("evictions"), 0u);
  EXPECT_GT(CacheCounter("resizes"), 0u);
  const int64_t capacity = syrupd_.StatsSnapshot().GaugeValue(
      "syrupd", "socket_select", "flow_cache.capacity");
  EXPECT_GT(capacity, static_cast<int64_t>(FlowDecisionCache::kMinSlots));
}

TEST_F(FlowCacheDispatchTest, AdmissionRejectCounterReachesSnapshot) {
  FlowCacheConfig config;
  config.capacity = FlowDecisionCache::kMinSlots;
  config.admission = true;
  config.adaptive = false;  // keep the table tiny so admission must act
  syrupd_.set_flow_cache_config(config);
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  // Residents gain frequency, then a one-shot storm of fresh flows hits a
  // full table: the storm is turned away at admission.
  for (int round = 0; round < 10; ++round) {
    for (uint32_t flow = 0; flow < 32; ++flow) {
      const Packet pkt = MakePacket(9000, flow);
      (void)stack_.hooks().socket_select(PacketView::Of(pkt));
    }
  }
  for (uint32_t flow = 1000; flow < 1256; ++flow) {
    const Packet pkt = MakePacket(9000, flow);
    (void)stack_.hooks().socket_select(PacketView::Of(pkt));
  }
  EXPECT_GT(CacheCounter("admission_rejects"), 0u);
}

TEST_F(FlowCacheDispatchTest, DeprecatedEnabledShimPreservesOtherKnobs) {
  FlowCacheConfig config;
  config.capacity = 512;
  config.admission = false;
  syrupd_.set_flow_cache_config(config);
  // The old bool toggle must only flip `enabled`, keeping the typed knobs.
  syrupd_.set_flow_cache_enabled(false);
  EXPECT_FALSE(syrupd_.flow_cache_config().enabled);
  EXPECT_FALSE(syrupd_.flow_cache_enabled());
  EXPECT_EQ(syrupd_.flow_cache_config().capacity, 512u);
  EXPECT_FALSE(syrupd_.flow_cache_config().admission);
  syrupd_.set_flow_cache_enabled(true);
  EXPECT_TRUE(syrupd_.flow_cache_config().enabled);
  EXPECT_EQ(syrupd_.flow_cache_config().capacity, 512u);
}

TEST_F(FlowCacheDispatchTest, ClientConfiguresTheDaemonCache) {
  const AppId app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  FlowCacheConfig config;
  config.enabled = false;
  config.capacity = 2048;
  client.SetFlowCacheConfig(config);
  EXPECT_FALSE(client.FlowCacheConfiguration().enabled);
  EXPECT_EQ(client.FlowCacheConfiguration().capacity, 2048u);
  ASSERT_TRUE(syrupd_.DeployPolicyFile(app, MicaHomePolicyAsm(6),
                                       Hook::kSocketSelect)
                  .ok());
  const Packet pkt = MakePacket(9000, 5);
  (void)stack_.hooks().socket_select(PacketView::Of(pkt));
  (void)stack_.hooks().socket_select(PacketView::Of(pkt));
  EXPECT_EQ(CacheCounter("hits"), 0u);  // disabled end to end
}

}  // namespace
}  // namespace syrup
