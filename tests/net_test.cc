#include <gtest/gtest.h>

#include "src/common/decision.h"
#include "src/net/packet.h"
#include "src/net/socket.h"
#include "src/net/stack.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

Packet MakePacket(uint16_t dst_port, ReqType type = ReqType::kGet,
                  uint16_t src_port = 20'000, uint32_t key_hash = 0) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a0000ff;
  pkt.tuple.src_port = src_port;
  pkt.tuple.dst_port = dst_port;
  pkt.SetHeader(type, /*user_id=*/1, key_hash, /*req_id=*/1, /*send=*/0);
  return pkt;
}

// --- packet wire format --------------------------------------------------------

TEST(Packet, WireLayoutRoundtrips) {
  Packet pkt = MakePacket(9000, ReqType::kScan, 21'000, 0xABCD);
  EXPECT_EQ(pkt.req_type(), ReqType::kScan);
  EXPECT_EQ(pkt.user_id(), 1u);
  EXPECT_EQ(pkt.key_hash(), 0xABCDu);
  EXPECT_EQ(pkt.req_id(), 1u);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(view.size(), kWireSize);
  EXPECT_EQ(view.DstPort(), 9000u);
}

TEST(Packet, DstPortIsBigEndianOnWire) {
  Packet pkt = MakePacket(0x1234);
  EXPECT_EQ(pkt.wire[2], 0x12);
  EXPECT_EQ(pkt.wire[3], 0x34);
}

TEST(Packet, RequestTypeAtPaperOffset) {
  // The SITA policy reads *(u64*)(pkt + 8): "first 8 bytes are UDP header".
  Packet pkt = MakePacket(9000, ReqType::kScan);
  uint64_t type;
  std::memcpy(&type, pkt.wire.data() + 8, 8);
  EXPECT_EQ(type, static_cast<uint64_t>(ReqType::kScan));
}

TEST(FiveTuple, HashDependsOnEachField) {
  FiveTuple base{1, 2, 3, 4, 17};
  FiveTuple other = base;
  other.src_port = 5;
  EXPECT_NE(base.Hash(), other.Hash());
  other = base;
  other.src_ip = 9;
  EXPECT_NE(base.Hash(), other.Hash());
  EXPECT_EQ(base.Hash(), FiveTuple(base).Hash());
}

// --- sockets --------------------------------------------------------------------

TEST(Socket, BoundedQueueDrops) {
  Socket sock(9000, /*depth=*/2);
  Packet pkt = MakePacket(9000);
  EXPECT_TRUE(sock.Enqueue(pkt));
  EXPECT_TRUE(sock.Enqueue(pkt));
  EXPECT_FALSE(sock.Enqueue(pkt));
  EXPECT_EQ(sock.enqueued(), 2u);
  EXPECT_EQ(sock.dropped(), 1u);
  EXPECT_EQ(sock.queue_length(), 2u);
}

TEST(Socket, FifoOrder) {
  Socket sock(9000, 8);
  for (uint64_t id = 1; id <= 3; ++id) {
    Packet pkt = MakePacket(9000);
    pkt.SetHeader(ReqType::kGet, 1, 0, id, 0);
    sock.Enqueue(pkt);
  }
  EXPECT_EQ(sock.Dequeue()->req_id(), 1u);
  EXPECT_EQ(sock.Dequeue()->req_id(), 2u);
  EXPECT_EQ(sock.Dequeue()->req_id(), 3u);
  EXPECT_FALSE(sock.Dequeue().has_value());
}

TEST(Socket, WakeCallbackFiresPerEnqueue) {
  Socket sock(9000, 8);
  int wakes = 0;
  sock.SetWakeCallback([&]() { ++wakes; });
  Packet pkt = MakePacket(9000);
  sock.Enqueue(pkt);
  sock.Enqueue(pkt);
  EXPECT_EQ(wakes, 2);
}

TEST(ReuseportGroup, DefaultSelectIsHashStable) {
  ReuseportGroup group(9000);
  for (int i = 0; i < 4; ++i) {
    group.AddSocket(8);
  }
  Packet pkt = MakePacket(9000);
  Socket* first = group.DefaultSelect(pkt);
  EXPECT_EQ(group.DefaultSelect(pkt), first);  // same flow, same socket
}

TEST(ReuseportGroup, FewFlowsImbalance) {
  // The Fig. 2 premise: 50 flows over 6 sockets spread unevenly.
  ReuseportGroup group(9000);
  for (int i = 0; i < 6; ++i) {
    group.AddSocket(1024);
  }
  int counts[6] = {};
  for (uint16_t flow = 0; flow < 50; ++flow) {
    Packet pkt = MakePacket(9000, ReqType::kGet, 20'000 + flow);
    for (size_t i = 0; i < group.size(); ++i) {
      if (group.DefaultSelect(pkt) == group.at(i)) {
        ++counts[i];
      }
    }
  }
  int max_count = 0;
  for (int count : counts) {
    max_count = std::max(max_count, count);
  }
  // Perfect balance would be ~8.3; hashing a small flow set overloads
  // someone.
  EXPECT_GT(max_count, 9);
}

// --- host stack pipeline -----------------------------------------------------------

class StackTest : public testing::Test {
 protected:
  StackTest() : stack_(sim_, Config()) {}

  static StackConfig Config() {
    StackConfig config;
    config.num_nic_queues = 2;
    return config;
  }

  Simulator sim_;
  HostStack stack_;
};

TEST_F(StackTest, DeliversToSocketThroughFullPath) {
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  Socket* sock = group->AddSocket(16);
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().rx_packets, 1u);
  EXPECT_EQ(stack_.stats().delivered_socket, 1u);
  EXPECT_EQ(sock->queue_length(), 1u);
  // Latency through driver+skb+protocol costs: delivery is not instant.
  EXPECT_GE(sim_.Now(), StackConfig().driver_cost);
}

TEST_F(StackTest, NoListenerCountsAsDrop) {
  stack_.Rx(MakePacket(12345));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().socket_drops, 1u);
}

TEST_F(StackTest, SocketSelectHookPicksSocket) {
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(16);
  Socket* second = group->AddSocket(16);
  stack_.hooks().socket_select = [](const PacketView&) -> Decision {
    return 1;
  };
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(second->queue_length(), 1u);
}

TEST_F(StackTest, SocketSelectDropHonored) {
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(16);
  stack_.hooks().socket_select = [](const PacketView&) { return kDrop; };
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().policy_drops, 1u);
  EXPECT_EQ(stack_.stats().delivered_socket, 0u);
}

TEST_F(StackTest, SocketSelectPassUsesDefaultHash) {
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(16);
  group->AddSocket(16);
  stack_.hooks().socket_select = [](const PacketView&) { return kPass; };
  Packet pkt = MakePacket(9000);
  Socket* expected = group->DefaultSelect(pkt);
  stack_.Rx(pkt);
  sim_.RunToCompletion();
  EXPECT_EQ(expected->queue_length(), 1u);
}

TEST_F(StackTest, InvalidSocketIndexFallsBack) {
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(16);
  stack_.hooks().socket_select = [](const PacketView&) -> Decision {
    return 99;
  };
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().invalid_decisions, 1u);
  EXPECT_EQ(stack_.stats().delivered_socket, 1u);
}

TEST_F(StackTest, XdpDrvRedirectsToAfXdpSocket) {
  Socket* xsk0 = stack_.RegisterAfXdpSocket(/*queue=*/0, 16);
  Socket* xsk1 = stack_.RegisterAfXdpSocket(/*queue=*/1, 16);
  stack_.hooks().xdp_offload = [](const PacketView&) -> Decision {
    return 1;  // steer to queue 1
  };
  stack_.hooks().xdp_drv = [](const PacketView&) -> Decision { return 0; };
  stack_.Rx(MakePacket(9100));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().delivered_afxdp, 1u);
  EXPECT_EQ(xsk0->queue_length(), 0u);
  EXPECT_EQ(xsk1->queue_length(), 1u);
}

TEST_F(StackTest, XdpDrvDropsEarly) {
  stack_.hooks().xdp_drv = [](const PacketView&) { return kDrop; };
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().policy_drops, 1u);
}

TEST_F(StackTest, XdpSkbUsedWhenDrvPasses) {
  stack_.RegisterAfXdpSocket(0, 16);
  Socket* generic = stack_.RegisterAfXdpSocket(0, 16);
  stack_.hooks().xdp_offload = [](const PacketView&) -> Decision {
    return 0;
  };
  stack_.hooks().xdp_drv = [](const PacketView&) { return kPass; };
  stack_.hooks().xdp_skb = [](const PacketView&) -> Decision { return 1; };
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(generic->queue_length(), 1u);
}

TEST_F(StackTest, CpuRedirectMovesProtocolProcessing) {
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(16);
  stack_.hooks().xdp_offload = [](const PacketView&) -> Decision {
    return 0;
  };
  stack_.hooks().cpu_redirect = [](const PacketView&) -> Decision {
    return 1;  // move to the other softirq core
  };
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().cpu_redirects, 1u);
  EXPECT_EQ(stack_.stats().delivered_socket, 1u);
  EXPECT_GT(stack_.SoftirqUtilization(1), 0.0);
}

TEST_F(StackTest, NicRingOverflowDrops) {
  StackConfig config;
  config.num_nic_queues = 1;
  config.nic_ring_depth = 4;
  HostStack small(sim_, config);
  small.GetOrCreateGroup(9000)->AddSocket(1024);
  // Burst of back-to-back packets at one instant: ring holds 4 + 1 in
  // service; the rest drop.
  for (int i = 0; i < 10; ++i) {
    small.Rx(MakePacket(9000));
  }
  sim_.RunToCompletion();
  EXPECT_EQ(small.stats().nic_ring_drops, 5u);
  EXPECT_EQ(small.stats().delivered_socket, 5u);
}

TEST_F(StackTest, SocketOverflowCountsInStackStats) {
  StackConfig config;
  config.num_nic_queues = 1;
  config.socket_queue_depth = 2;
  HostStack small(sim_, config);
  small.GetOrCreateGroup(9000)->AddSocket(config.socket_queue_depth);
  for (int i = 0; i < 5; ++i) {
    small.Rx(MakePacket(9000));
  }
  sim_.RunToCompletion();
  EXPECT_EQ(small.stats().socket_drops, 3u);
}

TEST_F(StackTest, SoftirqSerializesPackets) {
  // Two packets on the same queue finish one full cost apart.
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  Socket* sock = group->AddSocket(16);
  std::vector<Time> deliveries;
  sock->SetWakeCallback([&]() { deliveries.push_back(sim_.Now()); });
  stack_.hooks().xdp_offload = [](const PacketView&) -> Decision {
    return 0;
  };
  stack_.Rx(MakePacket(9000));
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  ASSERT_EQ(deliveries.size(), 2u);
  const StackConfig config = Config();
  const Duration per_packet =
      config.driver_cost + config.skb_alloc_cost + config.protocol_cost;
  EXPECT_EQ(deliveries[1] - deliveries[0], per_packet);
}


// --- late binding (paper §6.3 extension) -------------------------------------------

class LateBindingTest : public testing::Test {
 protected:
  LateBindingTest() : stack_(sim_, Config()) {
    stack_.EnableLateBinding(9000, /*buffer_depth=*/4);
    group_ = stack_.GetOrCreateGroup(9000);
    sock_a_ = group_->AddSocket(16);
    sock_b_ = group_->AddSocket(16);
  }

  static StackConfig Config() {
    StackConfig config;
    config.num_nic_queues = 1;
    return config;
  }

  Simulator sim_;
  HostStack stack_;
  ReuseportGroup* group_ = nullptr;
  Socket* sock_a_ = nullptr;
  Socket* sock_b_ = nullptr;
};

TEST_F(LateBindingTest, BuffersWhenNoExecutorIdle) {
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  // No socket reported idle: nothing delivered, nothing dropped.
  EXPECT_EQ(sock_a_->queue_length(), 0u);
  EXPECT_EQ(sock_b_->queue_length(), 0u);
  EXPECT_EQ(stack_.stats().socket_drops, 0u);
  // The idle notification binds the buffered packet.
  stack_.NotifySocketIdle(9000, sock_b_);
  EXPECT_EQ(sock_b_->queue_length(), 1u);
  EXPECT_EQ(stack_.late_bound_deliveries(), 1u);
}

TEST_F(LateBindingTest, DeliversImmediatelyToIdleExecutor) {
  stack_.NotifySocketIdle(9000, sock_a_);
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(sock_a_->queue_length(), 1u);
}

TEST_F(LateBindingTest, IdleExecutorsServedFifo) {
  stack_.NotifySocketIdle(9000, sock_b_);
  stack_.NotifySocketIdle(9000, sock_a_);
  stack_.Rx(MakePacket(9000));
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  // First packet to the longest-idle socket (b), second to a.
  EXPECT_EQ(sock_b_->queue_length(), 1u);
  EXPECT_EQ(sock_a_->queue_length(), 1u);
}

TEST_F(LateBindingTest, PolicyPickHonoredWhenIdle) {
  stack_.hooks().socket_select = [](const PacketView&) -> Decision {
    return 0;  // always socket a
  };
  stack_.NotifySocketIdle(9000, sock_b_);
  stack_.NotifySocketIdle(9000, sock_a_);
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(sock_a_->queue_length(), 1u);  // policy overrode FIFO order
  EXPECT_EQ(sock_b_->queue_length(), 0u);
}

TEST_F(LateBindingTest, BusyPolicyPickFallsBackToIdle) {
  stack_.hooks().socket_select = [](const PacketView&) -> Decision {
    return 0;  // wants socket a, which is busy
  };
  stack_.NotifySocketIdle(9000, sock_b_);
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(sock_b_->queue_length(), 1u);
}

TEST_F(LateBindingTest, BoundedBufferDrops) {
  for (int i = 0; i < 6; ++i) {
    stack_.Rx(MakePacket(9000));
  }
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().socket_drops, 2u);  // buffer depth 4
}

TEST_F(LateBindingTest, DropDecisionStillHonored) {
  stack_.hooks().socket_select = [](const PacketView&) { return kDrop; };
  stack_.NotifySocketIdle(9000, sock_a_);
  stack_.Rx(MakePacket(9000));
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.stats().policy_drops, 1u);
  EXPECT_EQ(sock_a_->queue_length(), 0u);
}

TEST_F(LateBindingTest, EarlyBindingPortsUnaffected) {
  Socket* other = stack_.GetOrCreateGroup(7000)->AddSocket(16);
  stack_.NotifySocketIdle(7000, other);  // no-op
  stack_.Rx(MakePacket(7000));
  sim_.RunToCompletion();
  EXPECT_EQ(other->queue_length(), 1u);  // normal early-binding delivery
}


// --- TCP connection steering (paper Fig. 4: connection -> socket) -------------------

class TcpSteeringTest : public testing::Test {
 protected:
  TcpSteeringTest() : stack_(sim_, Config()) {
    group_ = stack_.GetOrCreateGroup(9000);
    for (int i = 0; i < 3; ++i) {
      group_->AddSocket(64);
    }
  }

  static StackConfig Config() {
    StackConfig config;
    config.num_nic_queues = 1;
    return config;
  }

  static Packet TcpPacket(uint16_t src_port, uint64_t req_id = 1) {
    Packet pkt = MakePacket(9000, ReqType::kGet, src_port);
    pkt.tuple.protocol = kProtoTcp;
    pkt.SetHeader(ReqType::kGet, 1, 0, req_id, 0);
    return pkt;
  }

  Simulator sim_;
  HostStack stack_;
  ReuseportGroup* group_ = nullptr;
};

TEST_F(TcpSteeringTest, PolicyRunsOncePerConnection) {
  int policy_calls = 0;
  stack_.hooks().socket_select = [&](const PacketView&) -> Decision {
    ++policy_calls;
    return 2;
  };
  // Five packets on one connection: the policy sees only the first.
  for (uint64_t id = 1; id <= 5; ++id) {
    stack_.Rx(TcpPacket(30'000, id));
  }
  sim_.RunToCompletion();
  EXPECT_EQ(policy_calls, 1);
  EXPECT_EQ(group_->at(2)->queue_length(), 5u);
  EXPECT_EQ(stack_.open_connections(), 1u);
}

TEST_F(TcpSteeringTest, ConnectionsSteerIndependently) {
  // Round robin over *connections*: each new tuple gets the next socket,
  // and every packet of a connection follows its binding.
  uint32_t next = 0;
  stack_.hooks().socket_select = [&](const PacketView&) -> Decision {
    return next++ % 3;
  };
  for (uint16_t conn = 0; conn < 3; ++conn) {
    for (uint64_t id = 1; id <= 2; ++id) {
      stack_.Rx(TcpPacket(30'000 + conn, id));
    }
  }
  sim_.RunToCompletion();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group_->at(i)->queue_length(), 2u) << "socket " << i;
  }
  EXPECT_EQ(stack_.open_connections(), 3u);
}

TEST_F(TcpSteeringTest, CloseUnbindsAndResteers) {
  uint32_t next = 0;
  stack_.hooks().socket_select = [&](const PacketView&) -> Decision {
    return next++ % 3;
  };
  Packet pkt = TcpPacket(30'000);
  stack_.Rx(pkt);
  sim_.RunToCompletion();
  EXPECT_EQ(group_->at(0)->queue_length(), 1u);
  stack_.CloseConnection(pkt.tuple);
  EXPECT_EQ(stack_.open_connections(), 0u);
  // A "new connection" with the same tuple is re-scheduled (socket 1 now).
  stack_.Rx(pkt);
  sim_.RunToCompletion();
  EXPECT_EQ(group_->at(1)->queue_length(), 1u);
}

TEST_F(TcpSteeringTest, UdpUnaffectedByConnectionTable) {
  stack_.hooks().socket_select = [](const PacketView&) -> Decision {
    return 1;
  };
  stack_.Rx(MakePacket(9000));  // UDP
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.open_connections(), 0u);
  EXPECT_EQ(group_->at(1)->queue_length(), 1u);
}

TEST_F(TcpSteeringTest, DefaultHashBindsWithoutPolicy) {
  Packet pkt = TcpPacket(31'000);
  stack_.Rx(pkt);
  stack_.Rx(pkt);
  sim_.RunToCompletion();
  EXPECT_EQ(stack_.open_connections(), 1u);
  EXPECT_EQ(stack_.stats().delivered_socket, 2u);
}


// --- flow affinity model (§2.1 RFS motivation) ---------------------------------------

TEST(FlowAffinity, ColdPenaltyChargedOnceWithinWindow) {
  Simulator sim;
  StackConfig config;
  config.num_nic_queues = 1;
  config.protocol_cold_penalty = 1000;
  HostStack stack(sim, config);
  Socket* sock = stack.GetOrCreateGroup(9000)->AddSocket(64);
  std::vector<Time> deliveries;
  sock->SetWakeCallback([&]() { deliveries.push_back(sim.Now()); });

  stack.Rx(MakePacket(9000));  // cold
  stack.Rx(MakePacket(9000));  // warm (same flow, same core)
  sim.RunToCompletion();
  ASSERT_EQ(deliveries.size(), 2u);
  const Duration base =
      config.driver_cost + config.skb_alloc_cost + config.protocol_cost;
  EXPECT_EQ(deliveries[0], base + config.protocol_cold_penalty);
  EXPECT_EQ(deliveries[1] - deliveries[0], base);  // no penalty
}

TEST(FlowAffinity, ExpiresAfterWindow) {
  Simulator sim;
  StackConfig config;
  config.num_nic_queues = 1;
  config.protocol_cold_penalty = 1000;
  config.affinity_window = 10 * kMicrosecond;
  HostStack stack(sim, config);
  Socket* sock = stack.GetOrCreateGroup(9000)->AddSocket(64);
  std::vector<Time> deliveries;
  sock->SetWakeCallback([&]() { deliveries.push_back(sim.Now()); });
  stack.Rx(MakePacket(9000));
  sim.RunToCompletion();
  sim.RunUntil(1 * kMillisecond);  // cache long expired
  stack.Rx(MakePacket(9000));
  sim.RunToCompletion();
  ASSERT_EQ(deliveries.size(), 2u);
  const Duration base =
      config.driver_cost + config.skb_alloc_cost + config.protocol_cost;
  EXPECT_EQ(deliveries[1] - 1 * kMillisecond,
            base + config.protocol_cold_penalty);
}

TEST(FlowAffinity, DisabledByDefault) {
  Simulator sim;
  StackConfig config;
  config.num_nic_queues = 1;
  HostStack stack(sim, config);
  Socket* sock = stack.GetOrCreateGroup(9000)->AddSocket(64);
  Time delivered = 0;
  sock->SetWakeCallback([&]() { delivered = sim.Now(); });
  stack.Rx(MakePacket(9000));
  sim.RunToCompletion();
  EXPECT_EQ(delivered,
            config.driver_cost + config.skb_alloc_cost + config.protocol_cost);
}

TEST(FlowAffinity, RedirectedFlowIsColdOnNewCore) {
  Simulator sim;
  StackConfig config;
  config.num_nic_queues = 2;
  config.protocol_cold_penalty = 1000;
  HostStack stack(sim, config);
  stack.GetOrCreateGroup(9000)->AddSocket(64);
  // Pin arrivals to queue 0; redirect protocol processing alternating
  // between cores: each switch re-incurs the cold penalty.
  stack.hooks().xdp_offload = [](const PacketView&) -> Decision { return 0; };
  int flip = 0;
  stack.hooks().cpu_redirect = [&](const PacketView&) -> Decision {
    return flip++ % 2;
  };
  stack.Rx(MakePacket(9000));
  stack.Rx(MakePacket(9000));
  stack.Rx(MakePacket(9000));
  sim.RunToCompletion();
  // Cores 0 and 1 each saw the flow cold once; core 0 then warm once.
  // (Indirectly validated through utilization: both cores did protocol
  // work.)
  EXPECT_GT(stack.SoftirqUtilization(1), 0.0);
  EXPECT_EQ(stack.stats().cpu_redirects, 1u);  // one of three moved cores
}

}  // namespace
}  // namespace syrup
