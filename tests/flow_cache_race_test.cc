// Cache-invalidation race test (run under ASan and TSan in CI): dispatcher
// threads serving decisions through FlowDecisionCaches while an updater
// storms Map::Update must never serve a stale-map-version decision.
//
// Concurrency model mirrors production: each dispatcher owns its cache
// (syrupd keeps one per hook and the simulator serializes dispatch within
// a hook), while the map — values and version stamp — is shared by all
// threads. The invariant exercised is the one DESIGN.md's flow-cache
// section proves: Map bumps its version AFTER publishing the new value
// (release) and the dispatcher captures the version BEFORE executing the
// policy (acquire), so a cached decision can be fresher than its stamp but
// never staler. With a single writer publishing a monotone generation
// counter, that bound is directly checkable: a hit served at version sum S
// must carry a generation >= S - 1 (update k publishes generation k - 1,
// then bumps the version to k).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/core/flow_cache.h"
#include "src/map/map.h"
#include "src/net/packet.h"

namespace syrup {
namespace {

Packet MakePacket(uint32_t key_hash) {
  Packet pkt;
  pkt.tuple.src_port = 20'000;
  pkt.tuple.dst_port = 9'000;
  pkt.SetHeader(ReqType::kGet, 1, key_hash, 1, 0);
  return pkt;
}

// The "policy": decision = the generation currently stored in the map,
// read the way in-flight policies read hot map values (atomically through
// the stable value pointer).
Decision PolicyOf(Map& map) {
  uint32_t key = 0;
  return static_cast<Decision>(Map::AtomicLoad(map.Lookup(&key)));
}

TEST(FlowCacheRace, NoStaleDecisionUnderUpdateStorm) {
  MapSpec spec;
  spec.max_entries = 1;
  spec.name = "stormed";
  auto map = CreateMap(spec).value();
  ASSERT_TRUE(map->UpdateU64(0, 0).ok());  // generation 0, version 1

  FlowCacheBinding binding;
  binding.cacheable = true;
  binding.pkt_read_mask = 0xF00000u;  // key-hash bytes
  binding.read_maps = {map.get()};

  constexpr uint64_t kGenerations = 30'000;
  constexpr int kDispatchers = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<uint64_t> stale_evictions{0};
  std::atomic<uint64_t> hits{0};

  std::vector<std::thread> dispatchers;
  for (int t = 0; t < kDispatchers; ++t) {
    dispatchers.emplace_back([&] {
      // Per-dispatcher cache, as per-hook in syrupd. The map underneath
      // is shared and hot.
      FlowDecisionCache cache;
      ready.fetch_add(1);
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint32_t flow = 0; flow < 8; ++flow) {
          const Packet pkt = MakePacket(flow);
          const PacketView view = PacketView::Of(pkt);
          const FlowDecisionCache::Key key =
              FlowDecisionCache::MakeKey(view, binding.pkt_read_mask);
          const uint64_t version_sum = binding.VersionSum();
          Decision d = 0;
          bool stale = false;
          if (cache.Lookup(key, /*epoch=*/1, version_sum, &d, &stale)) {
            // Version sum S certifies updates 1..S completed before the
            // entry's capture, i.e. generation S-1 was already published.
            // Serving anything older is the stale-decision bug.
            ASSERT_GE(static_cast<uint64_t>(d) + 1, version_sum)
                << "stale decision served: cached generation " << d
                << " under version sum " << version_sum;
            hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            if (stale) {
              stale_evictions.fetch_add(1, std::memory_order_relaxed);
            }
            cache.Insert(key, PolicyOf(*map), /*epoch=*/1, version_sum);
          }
        }
      }
    });
  }

  // Single writer keeps the map value monotone (generation g is the g-th
  // update), which is what makes the staleness bound checkable above.
  // Wait until every dispatcher is spinning so the storm actually lands
  // on live caches, then keep storming — yielding periodically so the
  // dispatchers get to both cache a decision and catch it going stale —
  // until the contention provably happened (an entry was invalidated by
  // a version bump AND a hit was served in a quiet window).
  while (ready.load() < kDispatchers) {
    std::this_thread::yield();
  }
  uint64_t gen = 0;
  while (gen < kGenerations ||
         stale_evictions.load(std::memory_order_relaxed) == 0 ||
         hits.load(std::memory_order_relaxed) == 0) {
    ++gen;
    ASSERT_TRUE(map->UpdateU64(0, gen).ok());
    if ((gen & 0x3F) == 0) {
      std::this_thread::yield();
    }
    ASSERT_LT(gen, 100'000'000u) << "dispatchers never contended";
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : dispatchers) {
    t.join();
  }

  // The storm actually contended with the caches (the writer loop only
  // exits once both counters moved).
  EXPECT_GT(stale_evictions.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(map->version(), gen + 1);

  // Once quiet, the cache converges: insert-then-hit returns the final
  // generation under the final version sum.
  FlowDecisionCache cache;
  const Packet pkt = MakePacket(0);
  const auto key =
      FlowDecisionCache::MakeKey(PacketView::Of(pkt), binding.pkt_read_mask);
  const uint64_t final_sum = binding.VersionSum();
  cache.Insert(key, PolicyOf(*map), 1, final_sum);
  Decision d = 0;
  bool stale = false;
  ASSERT_TRUE(cache.Lookup(key, 1, final_sum, &d, &stale));
  EXPECT_EQ(d, gen);
}

// Version stamps alone (no cache): the sum over a binding's read set is
// monotone under concurrent updates — a captured sum can only go stale,
// never "un-stale", so an invalidation can never be missed.
TEST(FlowCacheRace, VersionSumIsMonotoneAcrossConcurrentUpdates) {
  MapSpec spec;
  spec.max_entries = 4;
  auto a = CreateMap(spec).value();
  auto b = CreateMap(spec).value();

  FlowCacheBinding binding;
  binding.cacheable = true;
  binding.read_maps = {a.get(), b.get()};

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < 50'000; ++i) {
      ASSERT_TRUE((i & 1 ? a : b)->UpdateU64(i & 3, i).ok());
    }
    stop.store(true);
  });

  uint64_t last = binding.VersionSum();
  while (!stop.load(std::memory_order_relaxed)) {
    const uint64_t now = binding.VersionSum();
    ASSERT_GE(now, last) << "version sum went backwards";
    last = now;
  }
  writer.join();
  EXPECT_EQ(binding.VersionSum(), 50'000u);
}

}  // namespace
}  // namespace syrup
