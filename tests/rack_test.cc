// Rack-level tests (§6.1 distributed extension): switch match-action
// isolation, data-plane registers, least-loaded scheduling, and end-to-end
// request flow through two Syrup scheduling layers.
#include <gtest/gtest.h>

#include "src/apps/loadgen.h"
#include "src/common/rng.h"
#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/map/registry.h"
#include "src/policies/builtin.h"
#include "src/rack/rack.h"
#include "src/rack/tor_switch.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

Packet MakePacket(uint16_t dst_port, uint16_t src_port = 20'000,
                  uint64_t req_id = 1) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.src_port = src_port;
  pkt.tuple.dst_port = dst_port;
  pkt.SetHeader(ReqType::kGet, 1, 0, req_id, 0);
  return pkt;
}

// --- TorSwitch ----------------------------------------------------------------

struct SwitchRig {
  explicit SwitchRig(int ports = 4)
      : tor(sim, Config(ports), [this](int port, const Packet& pkt) {
          delivered.push_back({port, pkt});
        }) {}

  static TorSwitchConfig Config(int ports) {
    TorSwitchConfig config;
    config.num_server_ports = ports;
    return config;
  }

  Simulator sim;
  std::vector<std::pair<int, Packet>> delivered;
  TorSwitch tor;
};

TEST(TorSwitch, DefaultHashesAcrossServers) {
  SwitchRig rig;
  rig.tor.RxFromUplink(MakePacket(9000));
  rig.sim.RunToCompletion();
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.tor.stats().no_tenant_match, 1u);
  // Same flow always lands on the same server.
  rig.tor.RxFromUplink(MakePacket(9000));
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.delivered[1].first, rig.delivered[0].first);
}

TEST(TorSwitch, TenantProgramsIsolatedByMatchActionRules) {
  SwitchRig rig;
  // Tenant A (port 9000) pins everything to server 3; tenant B (9001) to
  // server 1.
  ASSERT_TRUE(rig.tor
                  .InstallTenantProgram(9000,
                                        std::make_shared<ConstIndexPolicy>(3))
                  .ok());
  ASSERT_TRUE(rig.tor
                  .InstallTenantProgram(9001,
                                        std::make_shared<ConstIndexPolicy>(1))
                  .ok());
  rig.tor.RxFromUplink(MakePacket(9000));
  rig.tor.RxFromUplink(MakePacket(9001));
  rig.sim.RunToCompletion();
  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.delivered[0].first, 3);
  EXPECT_EQ(rig.delivered[1].first, 1);
  EXPECT_EQ(rig.tor.stats().no_tenant_match, 0u);
}

TEST(TorSwitch, RegistersTrackOutstanding) {
  SwitchRig rig;
  ASSERT_TRUE(rig.tor
                  .InstallTenantProgram(9000,
                                        std::make_shared<ConstIndexPolicy>(2))
                  .ok());
  Packet pkt = MakePacket(9000);
  rig.tor.RxFromUplink(pkt);
  rig.tor.RxFromUplink(pkt);
  EXPECT_EQ(rig.tor.OutstandingOn(2), 2u);
  rig.tor.RxFromServer(2, pkt);
  EXPECT_EQ(rig.tor.OutstandingOn(2), 1u);
  rig.tor.RxFromServer(2, pkt);
  rig.tor.RxFromServer(2, pkt);  // extra response: saturates at zero
  EXPECT_EQ(rig.tor.OutstandingOn(2), 0u);
}

TEST(TorSwitch, DropAndInvalidDecisions) {
  SwitchRig rig;
  ASSERT_TRUE(rig.tor
                  .InstallTenantProgram(
                      9000, std::make_shared<ConstIndexPolicy>(kDrop))
                  .ok());
  ASSERT_TRUE(rig.tor
                  .InstallTenantProgram(
                      9001, std::make_shared<ConstIndexPolicy>(77))
                  .ok());
  rig.tor.RxFromUplink(MakePacket(9000));
  rig.tor.RxFromUplink(MakePacket(9001));
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.tor.stats().policy_drops, 1u);
  EXPECT_EQ(rig.tor.stats().invalid_decisions, 1u);
  EXPECT_EQ(rig.delivered.size(), 1u);  // invalid fell back to the default
}

TEST(TorSwitch, ForwardingAddsPipelineAndWireLatency) {
  SwitchRig rig;
  rig.tor.RxFromUplink(MakePacket(9000));
  rig.sim.RunToCompletion();
  const TorSwitchConfig config = SwitchRig::Config(4);
  EXPECT_EQ(rig.sim.Now(), config.pipeline_latency + config.wire_latency);
}

TEST(TorSwitch, LeastLoadedPolicySteersToIdleServer) {
  SwitchRig rig;
  auto policy = std::make_shared<LeastLoadedPolicy>(
      4, rig.tor.outstanding_map());
  ASSERT_TRUE(rig.tor.InstallTenantProgram(9000, policy).ok());
  // Four requests, no responses: each goes to a different server.
  for (uint64_t id = 1; id <= 4; ++id) {
    rig.tor.RxFromUplink(MakePacket(9000, 20'000, id));
  }
  rig.sim.RunToCompletion();
  for (int port = 0; port < 4; ++port) {
    EXPECT_EQ(rig.tor.OutstandingOn(port), 1u) << "port " << port;
  }
  // Server 2 responds: the next request goes there.
  rig.tor.RxFromServer(2, MakePacket(9000));
  rig.tor.RxFromUplink(MakePacket(9000, 20'001, 5));
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.tor.OutstandingOn(2), 1u);
  EXPECT_EQ(rig.delivered.back().first, 2);
}

TEST(LeastLoaded, NativeMatchesBytecode) {
  // Resolve the bytecode twin's extern map against the same registers.
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = 4;
  auto registers = CreateMap(spec).value();

  auto assembled = bpf::Assemble(LeastLoadedPolicyAsm(4, "/tor/load"));
  ASSERT_TRUE(assembled.ok()) << assembled.status();
  auto program = std::make_shared<bpf::Program>();
  program->name = assembled->name;
  program->insns = assembled->insns;
  ASSERT_EQ(assembled->map_slots.size(), 1u);
  ASSERT_TRUE(assembled->map_slots[0].is_extern);
  program->maps.push_back(registers);
  ASSERT_TRUE(bpf::Verify(*program, bpf::ProgramContext::kPacket).ok());
  BytecodePacketPolicy bytecode(program, bpf::ExecEnv{});
  LeastLoadedPolicy native(4, registers);

  Rng rng(33);
  Packet pkt = MakePacket(9000);
  const PacketView view = PacketView::Of(pkt);
  for (int round = 0; round < 100; ++round) {
    for (uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(registers->UpdateU64(i, rng.NextBounded(64)).ok());
    }
    ASSERT_EQ(native.Schedule(view), bytecode.Schedule(view))
        << "round " << round;
  }
}

// --- Rack end-to-end ------------------------------------------------------------

TEST(Rack, ServesRequestsThroughBothLayers) {
  Simulator sim;
  RackConfig config;
  config.num_servers = 4;
  Rack rack(sim, config);
  ASSERT_TRUE(rack.tor()
                  .InstallTenantProgram(
                      9000, std::make_shared<LeastLoadedPolicy>(
                                4, rack.tor().outstanding_map()))
                  .ok());

  LoadGenConfig gen_config;
  gen_config.rate_rps = 100'000;
  gen_config.dst_port = 9000;
  LoadGenerator gen(
      sim, [&rack](Packet pkt) { rack.InjectRequest(std::move(pkt)); },
      gen_config);
  gen.Start(200 * kMillisecond);
  sim.RunUntil(250 * kMillisecond);

  EXPECT_GT(rack.completed(), 19'000u);
  // All servers participated.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(rack.server_completed(i), 2'000u) << "server " << i;
  }
  // Registers drain back toward zero once load stops.
  uint64_t outstanding = 0;
  for (int i = 0; i < 4; ++i) {
    outstanding += rack.tor().OutstandingOn(i);
  }
  EXPECT_EQ(outstanding, 0u);
  // End-to-end latency includes both wire hops and the service time.
  EXPECT_GT(rack.latency().Percentile(50), 20'000u);  // > 20us
}

TEST(Rack, LeastLoadedRoutesAroundStraggler) {
  // One server is 4x slower. Flow hashing keeps sending it its share;
  // least-loaded shifts work away from it.
  auto run = [](bool least_loaded) {
    Simulator sim;
    RackConfig config;
    config.num_servers = 4;
    config.server_speed = {1.0, 1.0, 1.0, 4.0};
    Rack rack(sim, config);
    if (least_loaded) {
      (void)rack.tor().InstallTenantProgram(
          9000, std::make_shared<LeastLoadedPolicy>(
                    4, rack.tor().outstanding_map()));
    }
    LoadGenConfig gen_config;
    gen_config.rate_rps = 1'200'000;  // ~78% of the heterogeneous capacity
    gen_config.dst_port = 9000;
    gen_config.num_flows = 200;
    LoadGenerator gen(
        sim, [&rack](Packet pkt) { rack.InjectRequest(std::move(pkt)); },
        gen_config);
    gen.Start(300 * kMillisecond);
    sim.RunUntil(350 * kMillisecond);
    return static_cast<double>(rack.latency().Percentile(99)) / 1000.0;
  };
  const double hashed_p99 = run(false);
  const double jsq_p99 = run(true);
  EXPECT_LT(jsq_p99, hashed_p99 / 2)
      << "least-loaded should mask the straggler";
}


TEST(PowerOfTwo, PicksLessLoadedOfTwoSamples) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = 4;
  auto registers = CreateMap(spec).value();
  ASSERT_TRUE(registers->UpdateU64(0, 10).ok());
  ASSERT_TRUE(registers->UpdateU64(1, 0).ok());
  ASSERT_TRUE(registers->UpdateU64(2, 10).ok());
  ASSERT_TRUE(registers->UpdateU64(3, 10).ok());
  auto rng = std::make_shared<Rng>(5);
  PowerOfTwoPolicy policy(4, registers,
                          [rng]() { return static_cast<uint32_t>(rng->Next()); });
  Packet pkt = MakePacket(9000);
  // Whenever index 1 is sampled it wins; otherwise some loaded index.
  int wins = 0;
  for (int i = 0; i < 400; ++i) {
    if (policy.Schedule(PacketView::Of(pkt)) == 1u) {
      ++wins;
    }
  }
  // P(sample includes 1) = 1 - (3/4)^2 = 43.75%.
  EXPECT_NEAR(wins, 175, 40);
}

TEST(PowerOfTwo, NativeMatchesBytecode) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = 8;
  auto registers = CreateMap(spec).value();

  auto assembled = bpf::Assemble(PowerOfTwoPolicyAsm(8, "/tor/load"));
  ASSERT_TRUE(assembled.ok()) << assembled.status();
  auto program = std::make_shared<bpf::Program>();
  program->name = assembled->name;
  program->insns = assembled->insns;
  program->maps.push_back(registers);
  ASSERT_TRUE(bpf::Verify(*program, bpf::ProgramContext::kPacket).ok());

  auto bytecode_rng = std::make_shared<Rng>(77);
  bpf::ExecEnv env;
  env.random_u32 = [bytecode_rng]() {
    return static_cast<uint32_t>(bytecode_rng->Next());
  };
  BytecodePacketPolicy bytecode(program, env);
  auto native_rng = std::make_shared<Rng>(77);
  PowerOfTwoPolicy native(8, registers, [native_rng]() {
    return static_cast<uint32_t>(native_rng->Next());
  });

  Rng scenario(3);
  Packet pkt = MakePacket(9000);
  const PacketView view = PacketView::Of(pkt);
  for (int round = 0; round < 200; ++round) {
    for (uint32_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(registers->UpdateU64(i, scenario.NextBounded(32)).ok());
    }
    ASSERT_EQ(native.Schedule(view), bytecode.Schedule(view))
        << "round " << round;
  }
}

}  // namespace
}  // namespace syrup
