// Storage backend tests (§6.1 extension): device model, the IO hook, and
// policy portability from network hooks to the storage hook.
#include <gtest/gtest.h>

#include <vector>

#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"
#include "src/storage/io_scheduler.h"
#include "src/storage/nvme_device.h"

namespace syrup {
namespace {

IoRequest MakeIo(IoOp op, uint32_t tenant = 1, uint32_t blocks = 1,
                 uint64_t id = 1) {
  IoRequest request;
  request.op = op;
  request.tenant_id = tenant;
  request.num_blocks = blocks;
  request.req_id = id;
  return request;
}

// --- NvmeDevice ---------------------------------------------------------------

TEST(NvmeDevice, ReadServiceTime) {
  Simulator sim;
  NvmeConfig config;
  NvmeDevice device(sim, config);
  Time completed = 0;
  device.SetCompletionCallback(
      [&](const IoRequest&, Time when) { completed = when; });
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kRead)));
  sim.RunToCompletion();
  EXPECT_EQ(completed, config.read_4k);
}

TEST(NvmeDevice, WritesAreSlower) {
  Simulator sim;
  NvmeConfig config;
  NvmeDevice device(sim, config);
  EXPECT_GT(device.ServiceTime(MakeIo(IoOp::kWrite)),
            device.ServiceTime(MakeIo(IoOp::kRead)));
}

TEST(NvmeDevice, SizeScalesServiceTime) {
  Simulator sim;
  NvmeConfig config;
  NvmeDevice device(sim, config);
  const Duration small = device.ServiceTime(MakeIo(IoOp::kRead, 1, 1));
  const Duration big = device.ServiceTime(MakeIo(IoOp::kRead, 1, 9));
  EXPECT_EQ(big, small + 8 * config.per_extra_block);
}

TEST(NvmeDevice, QueuesServeFifoAndInParallel) {
  Simulator sim;
  NvmeConfig config;
  NvmeDevice device(sim, config);
  std::vector<uint64_t> completions;
  device.SetCompletionCallback(
      [&](const IoRequest& request, Time) {
        completions.push_back(request.req_id);
      });
  // Two on queue 0 (serialized), one on queue 1 (parallel).
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kRead, 1, 1, 10)));
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kRead, 1, 1, 11)));
  ASSERT_TRUE(device.Submit(1, MakeIo(IoOp::kRead, 1, 1, 20)));
  sim.RunToCompletion();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 10u);  // q0 first, q1 ties broken by order
  EXPECT_EQ(completions[1], 20u);
  EXPECT_EQ(completions[2], 11u);
  EXPECT_EQ(sim.Now(), 2 * config.read_4k);  // not 3x: queues overlap
}

TEST(NvmeDevice, BoundedQueueRejects) {
  Simulator sim;
  NvmeConfig config;
  config.num_queues = 1;
  config.queue_depth = 2;
  NvmeDevice device(sim, config);
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kWrite)));  // in service
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kWrite)));
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kWrite)));
  EXPECT_FALSE(device.Submit(0, MakeIo(IoOp::kWrite)));
  EXPECT_EQ(device.stats().rejected, 1u);
  sim.RunToCompletion();
  EXPECT_EQ(device.stats().completed, 3u);
}

TEST(NvmeDevice, UtilizationTracked) {
  Simulator sim;
  NvmeConfig config;
  NvmeDevice device(sim, config);
  ASSERT_TRUE(device.Submit(0, MakeIo(IoOp::kRead)));
  sim.RunUntil(2 * config.read_4k);
  EXPECT_NEAR(device.QueueUtilization(0), 0.5, 0.01);
  EXPECT_EQ(device.QueueUtilization(1), 0.0);
}

// --- wire image ----------------------------------------------------------------

TEST(IoRequest, WireLayoutMatchesPacketConventions) {
  IoRequest request = MakeIo(IoOp::kWrite, /*tenant=*/7, /*blocks=*/4, 99);
  const auto wire = request.ToWire();
  uint64_t op;
  std::memcpy(&op, wire.data() + 8, 8);  // packet req-type offset
  EXPECT_EQ(op, static_cast<uint64_t>(IoOp::kWrite));
  uint32_t tenant;
  std::memcpy(&tenant, wire.data() + 16, 4);  // packet user-id offset
  EXPECT_EQ(tenant, 7u);
  // kWrite maps to the same value as ReqType::kScan (the "long" class).
  EXPECT_EQ(static_cast<uint64_t>(IoOp::kWrite),
            static_cast<uint64_t>(ReqType::kScan));
}

// --- IoScheduler ------------------------------------------------------------------

TEST(IoScheduler, DefaultRoundRobinsAcrossQueues) {
  Simulator sim;
  NvmeConfig config;
  config.num_queues = 4;
  NvmeDevice device(sim, config);
  IoScheduler scheduler(device);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead)));
  }
  for (int queue = 0; queue < 4; ++queue) {
    // One in service, one pending per queue.
    EXPECT_EQ(device.QueueLength(queue), 1u);
  }
}

TEST(IoScheduler, NetworkSitaPolicyIsolatesWritesUnchanged) {
  // The Fig. 5d SITA policy, written for sockets, deployed verbatim on the
  // storage hook: writes (the "long" class) go to queue 0, reads round-
  // robin across queues 1..3.
  Simulator sim;
  NvmeConfig config;
  config.num_queues = 4;
  NvmeDevice device(sim, config);
  IoScheduler scheduler(device);
  scheduler.SetPolicy(std::make_shared<SitaPolicy>(4));

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kWrite)));
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead)));
  }
  // All writes on queue 0 (one in service + five pending).
  EXPECT_EQ(device.QueueLength(0), 5u);
  // Reads spread over queues 1-3, never on 0.
  EXPECT_EQ(device.QueueLength(1), 1u);
  EXPECT_EQ(device.QueueLength(2), 1u);
  EXPECT_EQ(device.QueueLength(3), 1u);
}

TEST(IoScheduler, TokenPolicyDropsOutOfBudgetTenant) {
  // The §3.4 token policy (ReFlex-like, per §6.1), reused unchanged.
  Simulator sim;
  NvmeDevice device(sim, NvmeConfig{});
  IoScheduler scheduler(device);
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 16;
  auto tokens = CreateMap(spec).value();
  ASSERT_TRUE(tokens->UpdateU64(1, 2).ok());  // tenant 1: 2 tokens
  scheduler.SetPolicy(std::make_shared<TokenPolicy>(tokens));

  EXPECT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead, 1)));
  EXPECT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead, 1)));
  EXPECT_FALSE(scheduler.Submit(MakeIo(IoOp::kRead, 1)));  // out of tokens
  EXPECT_EQ(scheduler.stats().policy_drops, 1u);
  // An unknown tenant is not throttled (default policy).
  EXPECT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead, 9)));
}

TEST(IoScheduler, BytecodePolicyDeploysOnStorageHook) {
  // The *bytecode* MICA-style hash policy steering by the value at the
  // key-hash offset — here the request size field — verified and executed
  // on IO wire images.
  Simulator sim;
  NvmeConfig config;
  config.num_queues = 8;
  NvmeDevice device(sim, config);
  IoScheduler scheduler(device);

  auto assembled = bpf::Assemble(MicaHomePolicyAsm(8)).value();
  auto program = std::make_shared<bpf::Program>();
  program->name = assembled.name;
  program->insns = assembled.insns;
  ASSERT_TRUE(bpf::Verify(*program, bpf::ProgramContext::kPacket).ok());
  scheduler.SetPolicy(
      std::make_shared<BytecodePacketPolicy>(program, bpf::ExecEnv{}));

  ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead, 1, /*blocks=*/13)));
  EXPECT_EQ(device.QueueLength(13 % 8), 0u);  // in service there
  ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead, 1, /*blocks=*/13)));
  EXPECT_EQ(device.QueueLength(13 % 8), 1u);  // queued behind it
}

TEST(IoScheduler, InvalidDecisionFallsBack) {
  Simulator sim;
  NvmeConfig config;
  config.num_queues = 2;
  NvmeDevice device(sim, config);
  IoScheduler scheduler(device);
  scheduler.SetPolicy(std::make_shared<ConstIndexPolicy>(42));
  EXPECT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead)));
  EXPECT_EQ(scheduler.stats().invalid_decisions, 1u);
}

TEST(IoScheduler, ReadBehindWriteInterference) {
  // The phenomenon the token/SITA IO policies exist to fix: a read queued
  // behind a write waits ~write latency.
  Simulator sim;
  NvmeConfig config;
  config.num_queues = 1;
  NvmeDevice device(sim, config);
  IoScheduler scheduler(device);
  Time read_done = 0;
  device.SetCompletionCallback([&](const IoRequest& request, Time when) {
    if (request.op == IoOp::kRead) {
      read_done = when;
    }
  });
  ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kWrite)));
  ASSERT_TRUE(scheduler.Submit(MakeIo(IoOp::kRead)));
  sim.RunToCompletion();
  EXPECT_EQ(read_done, config.write_4k + config.read_4k);
}

}  // namespace
}  // namespace syrup
