// Tests for the observability subsystem (src/obs): registry get-or-create
// semantics, counter/gauge/histogram behavior, snapshot shape, and the JSON
// rendering contract documented in docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace syrup::obs {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsSameCell) {
  MetricsRegistry registry;
  auto a = registry.GetCounter("app", "hook", "events");
  auto b = registry.GetCounter("app", "hook", "events");
  EXPECT_EQ(a.get(), b.get());

  a->Inc(3);
  EXPECT_EQ(b->value, 3u);
}

TEST(MetricsRegistryTest, DistinctKeysGetDistinctCells) {
  MetricsRegistry registry;
  auto a = registry.GetCounter("app", "hook", "events");
  auto b = registry.GetCounter("app", "hook", "drops");
  auto c = registry.GetCounter("app", "other_hook", "events");
  auto d = registry.GetCounter("other_app", "hook", "events");
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(registry.NumMetrics(), 4u);
}

TEST(MetricsRegistryTest, KindsCoexistUnderOneKey) {
  // A key can hold a counter, a gauge, and a histogram simultaneously;
  // repeated Get of each kind is stable.
  MetricsRegistry registry;
  auto counter = registry.GetCounter("app", "hook", "m");
  auto gauge = registry.GetGauge("app", "hook", "m");
  auto histogram = registry.GetHistogram("app", "hook", "m");
  EXPECT_EQ(counter.get(), registry.GetCounter("app", "hook", "m").get());
  EXPECT_EQ(gauge.get(), registry.GetGauge("app", "hook", "m").get());
  EXPECT_EQ(histogram.get(), registry.GetHistogram("app", "hook", "m").get());
}

TEST(MetricsRegistryTest, CellOutlivesRegistry) {
  // shared_ptr ownership: a component holding a cell keeps bumping safely
  // even if the registry is torn down first.
  std::shared_ptr<Counter> cell;
  {
    MetricsRegistry registry;
    cell = registry.GetCounter("app", "hook", "events");
    cell->Inc();
  }
  cell->Inc();
  EXPECT_EQ(cell->value, 2u);
}

TEST(CounterTest, IncAndIncAtomicAgree) {
  Counter counter;
  counter.Inc();
  counter.Inc(4);
  counter.IncAtomic();
  counter.IncAtomic(10);
  EXPECT_EQ(counter.value, 16u);
  EXPECT_EQ(counter.Load(), 16u);
}

TEST(CounterTest, IncAtomicIsThreadSafe) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kIters = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < kIters; ++i) {
        counter.IncAtomic();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Load(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value, 7);
  gauge.Add(-20);
  EXPECT_EQ(gauge.Load(), -13);
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.Mean(), 0.0);
  EXPECT_EQ(histogram.Percentile(50), 0u);
  EXPECT_EQ(histogram.Percentile(99), 0u);
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket b holds samples of bit width b: [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 11u);
  EXPECT_EQ(LatencyHistogram::BucketOf(~uint64_t{0}), 64u);

  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(2), 3u);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(11), 2047u);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(64), ~uint64_t{0});
}

TEST(LatencyHistogramTest, RecordsStats) {
  LatencyHistogram histogram;
  histogram.Record(100);
  histogram.Record(200);
  histogram.Record(300);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.min(), 100u);
  EXPECT_EQ(histogram.max(), 300u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 200.0);
}

TEST(LatencyHistogramTest, PercentileReturnsBucketUpperEdge) {
  LatencyHistogram histogram;
  // 90 samples in bucket 7 ([64, 128)) and 10 in bucket 11 ([1024, 2048)).
  for (int i = 0; i < 90; ++i) {
    histogram.Record(100);
  }
  for (int i = 0; i < 10; ++i) {
    histogram.Record(1500);
  }
  // p50 and p90 land in the low bucket; edge 127 is within 2x of 100.
  EXPECT_EQ(histogram.Percentile(50), 127u);
  EXPECT_EQ(histogram.Percentile(90), 127u);
  // p99 lands in the high bucket; its edge (2047) is clamped to max.
  EXPECT_EQ(histogram.Percentile(99), 1500u);
  EXPECT_EQ(histogram.Percentile(100), 1500u);
}

TEST(LatencyHistogramTest, PercentileClampedToObservedMax) {
  LatencyHistogram histogram;
  histogram.Record(1'000'000);
  // One sample: every percentile is that sample, not its bucket edge.
  EXPECT_EQ(histogram.Percentile(50), 1'000'000u);
  EXPECT_EQ(histogram.Percentile(99.9), 1'000'000u);
}

TEST(LatencyHistogramTest, MergeFrom) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(4000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 4000u);
  EXPECT_DOUBLE_EQ(a.Mean(), (10 + 20 + 5 + 4000) / 4.0);
}

TEST(LatencyHistogramTest, MergeFromEmptyIsNoOp) {
  LatencyHistogram a;
  a.Record(10);
  LatencyHistogram empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 10u);
}

TEST(SnapshotTest, ShapeAndReaders) {
  MetricsRegistry registry;
  registry.GetCounter("alpha", "socket_select", "dispatched")->Inc(42);
  registry.GetGauge("alpha", "thread_scheduler", "runnable_depth")->Set(-2);
  auto histogram = registry.GetHistogram("host", "stack", "delivery_ns");
  histogram->Record(100);
  histogram->Record(1500);

  const Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.apps.size(), 2u);
  ASSERT_TRUE(snap.apps.contains("alpha"));
  ASSERT_TRUE(snap.apps.contains("host"));

  EXPECT_EQ(snap.CounterValue("alpha", "socket_select", "dispatched"), 42u);
  EXPECT_EQ(snap.GaugeValue("alpha", "thread_scheduler", "runnable_depth"),
            -2);

  const HistogramSummary* summary =
      snap.Histogram("host", "stack", "delivery_ns");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count, 2u);
  EXPECT_EQ(summary->min, 100u);
  EXPECT_EQ(summary->max, 1500u);
  EXPECT_DOUBLE_EQ(summary->mean, 800.0);

  // Absent keys and kind mismatches read as zero / null.
  EXPECT_EQ(snap.CounterValue("nope", "x", "y"), 0u);
  EXPECT_EQ(snap.GaugeValue("alpha", "socket_select", "dispatched"), 0);
  EXPECT_EQ(snap.Histogram("alpha", "socket_select", "dispatched"), nullptr);
  EXPECT_EQ(snap.Find("alpha", "socket_select", "missing"), nullptr);
}

TEST(SnapshotTest, SnapshotIsPointInTime) {
  MetricsRegistry registry;
  auto counter = registry.GetCounter("app", "hook", "events");
  counter->Inc(5);
  const Snapshot before = registry.TakeSnapshot();
  counter->Inc(5);
  const Snapshot after = registry.TakeSnapshot();
  EXPECT_EQ(before.CounterValue("app", "hook", "events"), 5u);
  EXPECT_EQ(after.CounterValue("app", "hook", "events"), 10u);
}

// Minimal structural JSON validator: brackets balance, strings close.
// Enough to catch escaping and comma bugs without a JSON dependency.
bool IsStructurallyValidJson(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(SnapshotJsonTest, EmptyRegistry) {
  MetricsRegistry registry;
  const std::string json = registry.TakeSnapshot().ToJson(/*pretty=*/false);
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"apps\""), std::string::npos) << json;
}

TEST(SnapshotJsonTest, RendersAllKindsValidly) {
  MetricsRegistry registry;
  registry.GetCounter("app", "hook", "events")->Inc(7);
  registry.GetGauge("app", "hook", "depth")->Set(-3);
  auto histogram = registry.GetHistogram("app", "hook", "latency_ns");
  histogram->Record(100);

  for (const bool pretty : {false, true}) {
    const std::string json = registry.TakeSnapshot().ToJson(pretty);
    EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
    EXPECT_NE(json.find("\"type\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"counter\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"gauge\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"histogram\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"events\""), std::string::npos) << json;
    EXPECT_NE(json.find("-3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  }
}

TEST(SnapshotJsonTest, EscapesSpecialCharacters) {
  MetricsRegistry registry;
  registry.GetCounter("we\"ird\\app", "ho\nok", "m\tetric")->Inc();
  const std::string json = registry.TakeSnapshot().ToJson(/*pretty=*/false);
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("we\\\"ird\\\\app"), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\\t"), std::string::npos) << json;
}

TEST(SnapshotJsonTest, DeterministicOrdering) {
  // Registration order must not leak into the rendering: std::map keys.
  MetricsRegistry a;
  a.GetCounter("zeta", "h", "m")->Inc();
  a.GetCounter("alpha", "h", "m")->Inc();
  MetricsRegistry b;
  b.GetCounter("alpha", "h", "m")->Inc();
  b.GetCounter("zeta", "h", "m")->Inc();
  EXPECT_EQ(a.TakeSnapshot().ToJson(), b.TakeSnapshot().ToJson());
}

}  // namespace
}  // namespace syrup::obs
