#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <utility>
#include <cstring>
#include <thread>
#include <vector>

#include "src/map/array_map.h"
#include "src/map/chained_hash_map.h"
#include "src/map/hash_map.h"
#include "src/map/map.h"
#include "src/map/offload_proxy.h"
#include "src/map/prog_array.h"
#include "src/map/registry.h"

namespace syrup {
namespace {

MapSpec ArraySpec(uint32_t entries) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = entries;
  return spec;
}

MapSpec HashSpec(uint32_t entries, uint32_t key_size = 4,
                 uint32_t value_size = 8) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.key_size = key_size;
  spec.value_size = value_size;
  spec.max_entries = entries;
  return spec;
}

// --- factory -----------------------------------------------------------------

TEST(CreateMap, RejectsZeroEntries) {
  MapSpec spec = ArraySpec(0);
  EXPECT_FALSE(CreateMap(spec).ok());
}

TEST(CreateMap, RejectsNonU32ArrayKeys) {
  MapSpec spec = ArraySpec(4);
  spec.key_size = 8;
  EXPECT_FALSE(CreateMap(spec).ok());
}

TEST(CreateMap, RejectsBadProgArrayShape) {
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.value_size = 4;  // must be u64
  spec.max_entries = 4;
  EXPECT_FALSE(CreateMap(spec).ok());
}

TEST(CreateMap, BuildsEachType) {
  EXPECT_TRUE(CreateMap(ArraySpec(4)).ok());
  EXPECT_TRUE(CreateMap(HashSpec(4)).ok());
  MapSpec prog;
  prog.type = MapType::kProgArray;
  prog.max_entries = 4;
  EXPECT_TRUE(CreateMap(prog).ok());
}

// --- ArrayMap -----------------------------------------------------------------

TEST(ArrayMap, EntriesExistZeroInitialized) {
  ArrayMap map(ArraySpec(8));
  for (uint32_t key = 0; key < 8; ++key) {
    void* value = map.Lookup(&key);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(Map::AtomicLoad(value), 0u);
  }
  EXPECT_EQ(map.Size(), 8u);
}

TEST(ArrayMap, OutOfBoundsLookupIsNull) {
  ArrayMap map(ArraySpec(8));
  uint32_t key = 8;
  EXPECT_EQ(map.Lookup(&key), nullptr);
  key = 0xFFFFFFFF;
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(ArrayMap, UpdateAndReadBack) {
  ArrayMap map(ArraySpec(4));
  EXPECT_TRUE(map.UpdateU64(2, 777).ok());
  EXPECT_EQ(map.LookupU64(2).value(), 777u);
  EXPECT_EQ(map.LookupU64(0).value(), 0u);
}

TEST(ArrayMap, UpdateOutOfBoundsFails) {
  ArrayMap map(ArraySpec(4));
  EXPECT_FALSE(map.UpdateU64(4, 1).ok());
}

TEST(ArrayMap, NoExistUpdateRejected) {
  ArrayMap map(ArraySpec(4));
  uint32_t key = 1;
  uint64_t value = 5;
  EXPECT_EQ(map.Update(&key, &value, UpdateFlag::kNoExist).code(),
            StatusCode::kAlreadyExists);
}

TEST(ArrayMap, DeleteRejected) {
  ArrayMap map(ArraySpec(4));
  uint32_t key = 1;
  EXPECT_FALSE(map.Delete(&key).ok());
}

TEST(ArrayMap, ValuePointersAreStable) {
  ArrayMap map(ArraySpec(4));
  uint32_t key = 1;
  void* first = map.Lookup(&key);
  EXPECT_TRUE(map.UpdateU64(3, 9).ok());
  EXPECT_EQ(map.Lookup(&key), first);
}

TEST(ArrayMap, StructValues) {
  MapSpec spec = ArraySpec(2);
  spec.value_size = 24;
  ArrayMap map(spec);
  struct Value {
    uint64_t a, b, c;
  } in{1, 2, 3};
  uint32_t key = 1;
  EXPECT_TRUE(map.Update(&key, &in, UpdateFlag::kAny).ok());
  Value out;
  std::memcpy(&out, map.Lookup(&key), sizeof(out));
  EXPECT_EQ(out.b, 2u);
}

// --- Map versioning (flow-decision cache invalidation) ------------------------

TEST(MapVersion, UpdateAndDeleteBumpTheStamp) {
  ArrayMap array(ArraySpec(4));
  EXPECT_EQ(array.version(), 0u);
  EXPECT_TRUE(array.UpdateU64(0, 1).ok());
  EXPECT_EQ(array.version(), 1u);
  EXPECT_TRUE(array.UpdateU64(0, 2).ok());
  EXPECT_EQ(array.version(), 2u);

  HashMap hash(HashSpec(16));
  EXPECT_TRUE(hash.UpdateU64(5, 7).ok());
  const uint64_t after_insert = hash.version();
  EXPECT_EQ(after_insert, 1u);
  uint32_t key = 5;
  EXPECT_TRUE(hash.Delete(&key).ok());
  EXPECT_EQ(hash.version(), after_insert + 1);
}

TEST(MapVersion, FailedOpsDontBump) {
  ArrayMap map(ArraySpec(4));
  EXPECT_FALSE(map.UpdateU64(9, 1).ok());  // out of bounds
  uint32_t key = 0;
  EXPECT_FALSE(map.Delete(&key).ok());  // arrays never delete
  EXPECT_EQ(map.version(), 0u);
}

TEST(MapVersion, LookupsDontBump) {
  ArrayMap map(ArraySpec(4));
  (void)map.LookupU64(0);
  uint32_t key = 1;
  (void)map.Lookup(&key);
  EXPECT_EQ(map.version(), 0u);
}

// --- PerCpuArrayMap -----------------------------------------------------------

MapSpec PerCpuSpec(uint32_t entries) {
  MapSpec spec;
  spec.type = MapType::kPerCpuArray;
  spec.max_entries = entries;
  return spec;
}

TEST(PerCpuArrayMap, FactoryBuildsAndNamesIt) {
  auto map = CreateMap(PerCpuSpec(4));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(MapTypeName((*map)->spec().type), "percpu_array");
  MapSpec bad = PerCpuSpec(4);
  bad.key_size = 8;  // per-CPU arrays require u32 keys, like arrays
  EXPECT_FALSE(CreateMap(bad).ok());
}

TEST(PerCpuArrayMap, ShardsAreIsolatedPerThread) {
  PerCpuArrayMap map(PerCpuSpec(4), /*num_shards=*/4);
  ASSERT_TRUE(map.UpdateU64(2, 100).ok());  // this thread's shard
  std::thread other([&map] {
    // A different thread lands in a different shard: it does not see the
    // first thread's in-shard value, and its own write stays local.
    EXPECT_TRUE(map.UpdateU64(2, 11).ok());
  });
  other.join();
  // The calling thread still reads its own shard through Lookup...
  uint32_t key = 2;
  EXPECT_EQ(Map::AtomicLoad(map.Lookup(&key)), 100u);
  // ...while the aggregating read side sums every shard.
  EXPECT_EQ(map.LookupU64(2).value(), 111u);
}

TEST(PerCpuArrayMap, LookupU64SumsAllShards) {
  PerCpuArrayMap map(PerCpuSpec(2), /*num_shards=*/3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    // 6 threads over 3 shards: slots wrap, every write still lands in
    // exactly one shard via an atomic add.
    threads.emplace_back([&map] {
      uint32_t key = 1;
      Map::AtomicFetchAdd(map.Lookup(&key), 5);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(map.LookupU64(1).value(), 30u);
  EXPECT_EQ(map.LookupU64(0).value(), 0u);
  // Per-shard introspection covers the same total.
  uint64_t sum = 0;
  for (uint32_t shard = 0; shard < map.num_shards(); ++shard) {
    sum += map.ShardValueU64(shard, 1).value();
  }
  EXPECT_EQ(sum, 30u);
  EXPECT_FALSE(map.ShardValueU64(3, 0).ok());
}

TEST(PerCpuArrayMap, ArraySemanticsPreserved) {
  PerCpuArrayMap map(PerCpuSpec(4), /*num_shards=*/2);
  EXPECT_EQ(map.Size(), 4u);
  uint32_t key = 4;
  EXPECT_EQ(map.Lookup(&key), nullptr);  // out of bounds
  key = 1;
  EXPECT_FALSE(map.Delete(&key).ok());
  uint64_t value = 1;
  EXPECT_EQ(map.Update(&key, &value, UpdateFlag::kNoExist).code(),
            StatusCode::kAlreadyExists);
  // Updates bump the shared version stamp exactly like flat arrays.
  EXPECT_TRUE(map.UpdateU64(1, 9).ok());
  EXPECT_EQ(map.version(), 1u);
}

// --- HashMap ------------------------------------------------------------------

TEST(HashMap, InsertLookupDelete) {
  HashMap map(HashSpec(16));
  EXPECT_FALSE(map.LookupU64(5).ok());
  EXPECT_TRUE(map.UpdateU64(5, 50).ok());
  EXPECT_EQ(map.LookupU64(5).value(), 50u);
  EXPECT_EQ(map.Size(), 1u);
  uint32_t key = 5;
  EXPECT_TRUE(map.Delete(&key).ok());
  EXPECT_FALSE(map.LookupU64(5).ok());
  EXPECT_EQ(map.Size(), 0u);
}

TEST(HashMap, DeleteMissingFails) {
  HashMap map(HashSpec(16));
  uint32_t key = 9;
  EXPECT_EQ(map.Delete(&key).code(), StatusCode::kNotFound);
}

TEST(HashMap, UpdateFlagsRespected) {
  HashMap map(HashSpec(16));
  uint32_t key = 1;
  uint64_t value = 10;
  EXPECT_EQ(map.Update(&key, &value, UpdateFlag::kExist).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(map.Update(&key, &value, UpdateFlag::kNoExist).ok());
  EXPECT_EQ(map.Update(&key, &value, UpdateFlag::kNoExist).code(),
            StatusCode::kAlreadyExists);
  value = 20;
  EXPECT_TRUE(map.Update(&key, &value, UpdateFlag::kExist).ok());
  EXPECT_EQ(map.LookupU64(1).value(), 20u);
}

TEST(HashMap, CapacityEnforced) {
  HashMap map(HashSpec(4));
  for (uint32_t key = 0; key < 4; ++key) {
    EXPECT_TRUE(map.UpdateU64(key, key).ok());
  }
  EXPECT_EQ(map.UpdateU64(99, 1).code(), StatusCode::kResourceExhausted);
  // Updating an existing key still works at capacity.
  EXPECT_TRUE(map.UpdateU64(2, 22).ok());
}

TEST(HashMap, ManyKeysAllRetrievable) {
  HashMap map(HashSpec(1000));
  for (uint32_t key = 0; key < 1000; ++key) {
    ASSERT_TRUE(map.UpdateU64(key, key * 3).ok());
  }
  EXPECT_EQ(map.Size(), 1000u);
  for (uint32_t key = 0; key < 1000; ++key) {
    ASSERT_EQ(map.LookupU64(key).value(), key * 3);
  }
}

TEST(HashMap, WideKeys) {
  HashMap map(HashSpec(8, /*key_size=*/16));
  uint8_t key_a[16] = {1, 2, 3};
  uint8_t key_b[16] = {1, 2, 4};
  uint64_t value = 7;
  EXPECT_TRUE(map.Update(key_a, &value, UpdateFlag::kAny).ok());
  EXPECT_NE(map.Lookup(key_a), nullptr);
  EXPECT_EQ(map.Lookup(key_b), nullptr);
}

TEST(HashMap, ValuePointerStableAcrossOtherInserts) {
  HashMap map(HashSpec(128));
  ASSERT_TRUE(map.UpdateU64(7, 1).ok());
  uint32_t key = 7;
  void* first = map.Lookup(&key);
  for (uint32_t other = 100; other < 160; ++other) {
    ASSERT_TRUE(map.UpdateU64(other, other).ok());
  }
  EXPECT_EQ(map.Lookup(&key), first);
}

TEST(HashMap, AtomicFetchAddUnderContention) {
  HashMap map(HashSpec(4));
  ASSERT_TRUE(map.UpdateU64(0, 0).ok());
  uint32_t key = 0;
  void* value = map.Lookup(&key);
  ASSERT_NE(value, nullptr);
  constexpr int kThreads = 4;
  constexpr int kIters = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([value]() {
      for (int i = 0; i < kIters; ++i) {
        Map::AtomicFetchAdd(value, 1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(Map::AtomicLoad(value), uint64_t{kThreads} * kIters);
}

TEST(HashMap, ConcurrentInsertsAreSafe) {
  HashMap map(HashSpec(10'000));
  constexpr int kThreads = 4;
  constexpr uint32_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t]() {
      for (uint32_t i = 0; i < kPerThread; ++i) {
        const uint32_t key = static_cast<uint32_t>(t) * kPerThread + i;
        ASSERT_TRUE(map.UpdateU64(key, key).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(map.Size(), kThreads * kPerThread);
  for (uint32_t key = 0; key < kThreads * kPerThread; ++key) {
    ASSERT_EQ(map.LookupU64(key).value(), key);
  }
}

// Regression: table sizing used to be computed as NextPow2 of the u32
// product `max_entries * 2`, which wraps to 0 for max_entries >= 2^31 and
// collapsed the table to a single bucket. Sizing must be monotonic in
// max_entries up to the cap — and hitting the cap must be *reported*, not
// silent: the constructor bumps the per-map bucket_clamp counter.
TEST(HashMap, HugeMaxEntriesClampIsCountedNotSilent) {
  HashMap huge(HashSpec(1u << 31));
  HashMap small(HashSpec(64));
  EXPECT_GE(huge.slot_count(), small.slot_count());
  EXPECT_EQ(huge.slot_count(), HashMap::kMaxSlots);  // sizing cap, not 1
  EXPECT_EQ(huge.op_counters().bucket_clamp->Load(), 1u);
  EXPECT_EQ(small.op_counters().bucket_clamp->Load(), 0u);
  // And the degenerate pre-fix behavior — every key in one chain — stays
  // gone: distinct keys stay retrievable.
  ASSERT_TRUE(huge.UpdateU64(1, 10).ok());
  ASSERT_TRUE(huge.UpdateU64(2, 20).ok());
  EXPECT_EQ(huge.LookupU64(1).value(), 10u);
  EXPECT_EQ(huge.LookupU64(2).value(), 20u);
}

// Same clamp reporting on the retained chained oracle (2^20 buckets).
TEST(ChainedHashMap, BucketClampIsCounted) {
  ChainedHashMap huge(HashSpec(1u << 31));
  EXPECT_EQ(huge.bucket_count(), 1u << 20);
  EXPECT_EQ(huge.op_counters().bucket_clamp->Load(), 1u);
  ASSERT_TRUE(huge.UpdateU64(1, 10).ok());
  EXPECT_EQ(huge.LookupU64(1).value(), 10u);
}

TEST(HashMap, ConcurrentReadersDontBlockEachOther) {
  // Smoke for the shared_mutex read path: many threads hammering Lookup on
  // the same key while one thread updates values in place via atomics.
  HashMap map(HashSpec(16));
  ASSERT_TRUE(map.UpdateU64(7, 0).ok());
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&map, &stop]() {
      uint32_t key = 7;
      while (!stop.load(std::memory_order_relaxed)) {
        void* v = map.Lookup(&key);
        ASSERT_NE(v, nullptr);
        (void)Map::AtomicLoad(v);
      }
    });
  }
  uint32_t key = 7;
  void* v = map.Lookup(&key);
  for (int i = 0; i < 10'000; ++i) {
    Map::AtomicFetchAdd(v, 1);
  }
  stop.store(true);
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(map.LookupU64(7).value(), 10'000u);
}

// --- ProgArrayMap --------------------------------------------------------------

TEST(ProgArray, EmptySlotsHoldNoProgram) {
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.max_entries = 8;
  ProgArrayMap map(spec);
  EXPECT_EQ(map.ProgramAt(0), kNoProgram);
  EXPECT_EQ(map.ProgramAt(7), kNoProgram);
  EXPECT_EQ(map.ProgramAt(8), kNoProgram);  // out of range: miss, not crash
  EXPECT_EQ(map.Size(), 0u);
}

TEST(ProgArray, InstallAndClear) {
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.max_entries = 8;
  ProgArrayMap map(spec);
  uint32_t key = 3;
  uint64_t prog = 42;
  EXPECT_TRUE(map.Update(&key, &prog, UpdateFlag::kAny).ok());
  EXPECT_EQ(map.ProgramAt(3), 42u);
  EXPECT_EQ(map.Size(), 1u);
  EXPECT_TRUE(map.Delete(&key).ok());
  EXPECT_EQ(map.ProgramAt(3), kNoProgram);
}

TEST(ProgArray, OutOfRangeUpdateFails) {
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.max_entries = 4;
  ProgArrayMap map(spec);
  uint32_t key = 4;
  uint64_t prog = 1;
  EXPECT_FALSE(map.Update(&key, &prog, UpdateFlag::kAny).ok());
}

// --- typed helpers ---------------------------------------------------------------

TEST(MapTyped, LookupU64RejectsWrongShape) {
  HashMap map(HashSpec(4, /*key_size=*/8));
  EXPECT_EQ(map.LookupU64(1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(map.UpdateU64(1, 1).code(), StatusCode::kInvalidArgument);
}

TEST(MapTyped, LookupU64MissIsNotFound) {
  HashMap map(HashSpec(4));
  EXPECT_EQ(map.LookupU64(1).status().code(), StatusCode::kNotFound);
}

// --- Registry ---------------------------------------------------------------------

TEST(Registry, PinOpenUnpin) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  ASSERT_TRUE(registry.Pin("/syrup/app/m", map, /*owner=*/1000).ok());
  auto opened = registry.Open("/syrup/app/m", 1000);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().get(), map.get());
  EXPECT_TRUE(registry.Unpin("/syrup/app/m", 1000).ok());
  EXPECT_FALSE(registry.Open("/syrup/app/m", 1000).ok());
}

TEST(Registry, DuplicatePinRejected) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  ASSERT_TRUE(registry.Pin("/p", map, 1).ok());
  EXPECT_EQ(registry.Pin("/p", map, 1).code(), StatusCode::kAlreadyExists);
}

TEST(Registry, NonOwnerDeniedByDefault) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  ASSERT_TRUE(registry.Pin("/p", map, /*owner=*/1000).ok());
  EXPECT_EQ(registry.Open("/p", 2000).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(registry.Open("/p", 2000, MapAccess::kRead).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(Registry, WorldReadableAllowsReadOnly) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  PinMode mode;
  mode.world_readable = true;
  ASSERT_TRUE(registry.Pin("/p", map, 1000, mode).ok());
  EXPECT_TRUE(registry.Open("/p", 2000, MapAccess::kRead).ok());
  EXPECT_FALSE(registry.Open("/p", 2000, MapAccess::kWrite).ok());
}

TEST(Registry, WorldWritableAllowsAll) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  PinMode mode;
  mode.world_writable = true;
  ASSERT_TRUE(registry.Pin("/p", map, 1000, mode).ok());
  EXPECT_TRUE(registry.Open("/p", 2000, MapAccess::kWrite).ok());
}

TEST(Registry, OnlyOwnerUnpins) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  ASSERT_TRUE(registry.Pin("/p", map, 1000).ok());
  EXPECT_EQ(registry.Unpin("/p", 2000).code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(registry.Unpin("/p", 1000).ok());
}

TEST(Registry, MapSurvivesUnpinWhileHandleHeld) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  ASSERT_TRUE(registry.Pin("/p", map, 1000).ok());
  auto handle = registry.Open("/p", 1000).value();
  ASSERT_TRUE(registry.Unpin("/p", 1000).ok());
  EXPECT_TRUE(handle->UpdateU64(0, 9).ok());  // still alive
}

TEST(Registry, ListPaths) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  ASSERT_TRUE(registry.Pin("/b", map, 1).ok());
  ASSERT_TRUE(registry.Pin("/a", map, 1).ok());
  EXPECT_EQ(registry.ListPaths(), (std::vector<std::string>{"/a", "/b"}));
}

TEST(Registry, EmptyPathRejected) {
  MapRegistry registry;
  auto map = CreateMap(ArraySpec(4)).value();
  EXPECT_FALSE(registry.Pin("", map, 1).ok());
  EXPECT_FALSE(registry.Pin("/x", nullptr, 1).ok());
}


// --- OffloadMapProxy -------------------------------------------------------------

TEST(OffloadProxy, DelegatesOperations) {
  auto backing = CreateMap(HashSpec(8)).value();
  OffloadMapProxy proxy(backing, std::chrono::nanoseconds(0));
  EXPECT_TRUE(proxy.UpdateU64(1, 11).ok());
  EXPECT_EQ(proxy.LookupU64(1).value(), 11u);
  // Writes through the proxy are visible on the backing map and vice versa.
  EXPECT_EQ(backing->LookupU64(1).value(), 11u);
  EXPECT_TRUE(backing->UpdateU64(2, 22).ok());
  EXPECT_EQ(proxy.LookupU64(2).value(), 22u);
  uint32_t key = 1;
  EXPECT_TRUE(proxy.Delete(&key).ok());
  EXPECT_FALSE(backing->LookupU64(1).ok());
  EXPECT_EQ(proxy.Size(), 1u);
}

TEST(OffloadProxy, ChargesRoundTripLatency) {
  auto backing = CreateMap(HashSpec(8)).value();
  ASSERT_TRUE(backing->UpdateU64(1, 1).ok());
  constexpr auto kRtt = std::chrono::microseconds(50);
  OffloadMapProxy proxy(backing, kRtt);
  uint32_t key = 1;
  const auto start = std::chrono::steady_clock::now();
  proxy.Lookup(&key);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, kRtt);
}

TEST(OffloadProxy, SharesSpecWithBacking) {
  auto backing = CreateMap(HashSpec(8, 16, 32)).value();
  OffloadMapProxy proxy(backing, std::chrono::nanoseconds(0));
  EXPECT_EQ(proxy.spec().key_size, 16u);
  EXPECT_EQ(proxy.spec().value_size, 32u);
}


// --- Visit (iteration) -----------------------------------------------------------

TEST(MapVisit, ArrayMapVisitsEveryIndex) {
  ArrayMap map(ArraySpec(4));
  ASSERT_TRUE(map.UpdateU64(2, 22).ok());
  std::vector<std::pair<uint32_t, uint64_t>> seen;
  map.Visit([&](const void* key, void* value) {
    uint32_t k;
    std::memcpy(&k, key, sizeof(k));
    seen.push_back({k, Map::AtomicLoad(value)});
  });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[2].first, 2u);
  EXPECT_EQ(seen[2].second, 22u);
  EXPECT_EQ(seen[0].second, 0u);
}

TEST(MapVisit, HashMapVisitsLiveEntriesOnly) {
  HashMap map(HashSpec(32));
  for (uint32_t key : {3u, 7u, 9u}) {
    ASSERT_TRUE(map.UpdateU64(key, key * 10).ok());
  }
  uint32_t del = 7;
  ASSERT_TRUE(map.Delete(&del).ok());
  std::map<uint32_t, uint64_t> seen;
  map.Visit([&](const void* key, void* value) {
    uint32_t k;
    std::memcpy(&k, key, sizeof(k));
    seen[k] = Map::AtomicLoad(value);
  });
  EXPECT_EQ(seen, (std::map<uint32_t, uint64_t>{{3, 30}, {9, 90}}));
}

TEST(MapVisit, ProgArraySkipsEmptySlots) {
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.max_entries = 8;
  ProgArrayMap map(spec);
  uint32_t key = 5;
  uint64_t prog = 42;
  ASSERT_TRUE(map.Update(&key, &prog, UpdateFlag::kAny).ok());
  int visited = 0;
  map.Visit([&](const void* k, void* v) {
    uint32_t index;
    std::memcpy(&index, k, sizeof(index));
    EXPECT_EQ(index, 5u);
    EXPECT_EQ(Map::AtomicLoad(v), 42u);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
}

TEST(MapVisit, VisitCanMutateValuesInPlace) {
  ArrayMap map(ArraySpec(3));
  map.Visit([](const void*, void* value) { Map::AtomicStore(value, 5); });
  for (uint32_t key = 0; key < 3; ++key) {
    EXPECT_EQ(map.LookupU64(key).value(), 5u);
  }
}

// --- swiss-table vs chained differential -------------------------------------
// The retained ChainedHashMap is the oracle (SimEngine::kReference
// pattern): a long randomized op stream — insert/overwrite/flagged
// update/delete/lookup — must produce byte-identical results on both
// implementations at every step, across key sizes, value sizes (inline
// and slab), and Visit/Size shapes.

// Deterministic xorshift so failures replay.
class DiffRng {
 public:
  explicit DiffRng(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  uint64_t state_;
};

void RunDifferential(uint32_t key_size, uint32_t value_size, uint64_t seed) {
  SCOPED_TRACE("key_size=" + std::to_string(key_size) +
               " value_size=" + std::to_string(value_size) +
               " seed=" + std::to_string(seed));
  constexpr uint32_t kEntries = 128;
  constexpr int kOps = 4000;
  HashMap subject(HashSpec(kEntries, key_size, value_size));
  ChainedHashMap oracle(HashSpec(kEntries, key_size, value_size));
  DiffRng rng(seed);

  auto make_key = [&](uint64_t id, std::vector<uint8_t>* out) {
    out->assign(key_size, 0);
    for (uint32_t i = 0; i < key_size && i < 8; ++i) {
      (*out)[i] = static_cast<uint8_t>(id >> (8 * i));
    }
  };
  std::vector<uint8_t> key;
  std::vector<uint8_t> value(value_size);
  for (int op = 0; op < kOps; ++op) {
    // Key universe ~2x capacity so both hit and miss paths churn.
    make_key(rng.Next() % (2 * kEntries), &key);
    switch (rng.Next() % 4) {
      case 0:
      case 1: {  // update, cycling through the three flags
        for (uint32_t i = 0; i < value_size; ++i) {
          value[i] = static_cast<uint8_t>(rng.Next());
        }
        const auto flag = static_cast<UpdateFlag>(rng.Next() % 3);
        const Status a = subject.Update(key.data(), value.data(), flag);
        const Status b = oracle.Update(key.data(), value.data(), flag);
        ASSERT_EQ(a.ok(), b.ok()) << "op " << op << ": " << a.message()
                                  << " vs " << b.message();
        break;
      }
      case 2: {  // delete
        const Status a = subject.Delete(key.data());
        const Status b = oracle.Delete(key.data());
        ASSERT_EQ(a.ok(), b.ok()) << "op " << op;
        break;
      }
      default: {  // lookup: same presence, same bytes
        void* a = subject.Lookup(key.data());
        void* b = oracle.Lookup(key.data());
        ASSERT_EQ(a == nullptr, b == nullptr) << "op " << op;
        if (a != nullptr) {
          ASSERT_EQ(std::memcmp(a, b, value_size), 0) << "op " << op;
        }
      }
    }
    ASSERT_EQ(subject.Size(), oracle.Size()) << "op " << op;
  }

  // Full-table sweep: identical contents, and Visit sees exactly the
  // live entries with matching bytes.
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> subject_entries;
  subject.Visit([&](const void* k, void* v) {
    std::vector<uint8_t> kk(static_cast<const uint8_t*>(k),
                            static_cast<const uint8_t*>(k) + key_size);
    std::vector<uint8_t> vv(static_cast<uint8_t*>(v),
                            static_cast<uint8_t*>(v) + value_size);
    ASSERT_TRUE(subject_entries.emplace(kk, vv).second);
  });
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> oracle_entries;
  oracle.Visit([&](const void* k, void* v) {
    std::vector<uint8_t> kk(static_cast<const uint8_t*>(k),
                            static_cast<const uint8_t*>(k) + key_size);
    std::vector<uint8_t> vv(static_cast<uint8_t*>(v),
                            static_cast<uint8_t*>(v) + value_size);
    ASSERT_TRUE(oracle_entries.emplace(kk, vv).second);
  });
  EXPECT_EQ(subject_entries, oracle_entries);
}

TEST(HashMapDifferential, U32KeysU64Values) { RunDifferential(4, 8, 1); }
TEST(HashMapDifferential, U64KeysInlineStructValues) {
  RunDifferential(8, 16, 2);
}
TEST(HashMapDifferential, OddKeysSlabValues) { RunDifferential(13, 40, 3); }
TEST(HashMapDifferential, ManySeeds) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    RunDifferential(4, 8, seed);
    RunDifferential(8, 40, seed);
  }
}

// --- batched lookup ----------------------------------------------------------

TEST(HashMapBatch, MatchesSequentialLookups) {
  HashMap map(HashSpec(256));
  for (uint32_t k = 0; k < 200; k += 3) {
    ASSERT_TRUE(map.UpdateU64(k, uint64_t{k} * 7).ok());
  }
  uint32_t keys[Map::kMaxLookupBatch];
  void* batched[Map::kMaxLookupBatch];
  for (uint32_t i = 0; i < Map::kMaxLookupBatch; ++i) {
    keys[i] = i * 5;  // mix of present and absent keys
  }
  map.LookupBatch(Map::kMaxLookupBatch, keys, batched);
  for (uint32_t i = 0; i < Map::kMaxLookupBatch; ++i) {
    EXPECT_EQ(batched[i], map.Lookup(&keys[i])) << "key " << keys[i];
  }
}

TEST(HashMapBatch, U64FlavorCopiesValuesAndBitmap) {
  HashMap map(HashSpec(64));
  ASSERT_TRUE(map.UpdateU64(2, 22).ok());
  ASSERT_TRUE(map.UpdateU64(5, 55).ok());
  const uint32_t keys[4] = {2, 3, 5, 7};
  uint64_t out[4] = {99, 99, 99, 99};
  const uint64_t hits = map.LookupBatchU64(4, keys, out);
  EXPECT_EQ(hits, 0b101u);
  EXPECT_EQ(out[0], 22u);
  EXPECT_EQ(out[1], 0u);  // miss writes 0
  EXPECT_EQ(out[2], 55u);
  EXPECT_EQ(out[3], 0u);
}

TEST(HashMapBatch, CountersMatchSequentialAccounting) {
  HashMap map(HashSpec(64));
  ASSERT_TRUE(map.UpdateU64(1, 1).ok());
  const uint64_t lookups_before = map.op_counters().lookups->Load();
  const uint64_t misses_before = map.op_counters().misses->Load();
  const uint32_t keys[3] = {1, 2, 3};
  void* out[3];
  map.LookupBatch(3, keys, out);
  EXPECT_EQ(map.op_counters().lookups->Load() - lookups_before, 3u);
  EXPECT_EQ(map.op_counters().misses->Load() - misses_before, 2u);
}

// --- runtime gauges ----------------------------------------------------------

TEST(HashMapStats, RuntimeStatsTrackOccupancyAndTombstones) {
  HashMap map(HashSpec(64));
  for (uint32_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(map.UpdateU64(k, k).ok());
  }
  MapRuntimeStats stats = map.RuntimeStats();
  EXPECT_EQ(stats.occupancy, 10u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_GE(stats.max_probe_len, 1u);

  for (uint32_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(map.Delete(&k).ok());
  }
  stats = map.RuntimeStats();
  EXPECT_EQ(stats.occupancy, 6u);
  EXPECT_EQ(stats.tombstones, 4u);
}

}  // namespace
}  // namespace syrup
