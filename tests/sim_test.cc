#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/sim/simulator.h"

// Global allocation counter for the zero-allocation assertions. Sanitizer
// builds interpose their own allocator, so counting is compiled out there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SYRUP_COUNT_GLOBAL_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SYRUP_COUNT_GLOBAL_ALLOCS 0
#else
#define SYRUP_COUNT_GLOBAL_ALLOCS 1
#endif
#else
#define SYRUP_COUNT_GLOBAL_ALLOCS 1
#endif

#if SYRUP_COUNT_GLOBAL_ALLOCS
namespace {
// Per-thread, not process-global: the zero-alloc gate below must only see
// allocations made by the engine under test, and sharded runs put other
// engines on other threads of this process (src/sim/sharded.h). Counting
// per thread scopes the assertion to the instance the test drives.
thread_local uint64_t t_thread_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_thread_allocs;
  if (void* ptr = std::malloc(size > 0 ? size : 1)) {
    return ptr;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#endif

namespace syrup {
namespace {

uint64_t ThreadAllocs() {
#if SYRUP_COUNT_GLOBAL_ALLOCS
  return t_thread_allocs;
#else
  return 0;
#endif
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&]() { order.push_back(3); });
  sim.ScheduleAt(10, [&]() { order.push_back(1); });
  sim.ScheduleAt(20, [&]() { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(Simulator, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i]() { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&]() { ++fired; });
  sim.ScheduleAt(100, [&]() { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 10u);  // clock rests at the last dispatched event
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000u);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) {
      sim.ScheduleAfter(1, chain);
    }
  };
  sim.ScheduleAfter(1, chain);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleAt(10, [&]() { fired = true; });
  EXPECT_TRUE(handle.valid());
  handle.Cancel();
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  EventHandle handle = sim.ScheduleAt(10, []() {});
  handle.Cancel();
  handle.Cancel();  // no crash
  EXPECT_FALSE(handle.valid());
  sim.RunToCompletion();
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&]() { order.push_back(1); });
  EventHandle second = sim.ScheduleAt(20, [&]() { order.push_back(2); });
  sim.ScheduleAt(30, [&]() { order.push_back(3); });
  second.Cancel();
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StopHaltsDispatch) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&]() {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(20, [&]() { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
  // A later run resumes from where it stopped.
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ReturnsDispatchCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(static_cast<Time>(i + 1), []() {});
  }
  EXPECT_EQ(sim.RunToCompletion(), 5u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(100, []() {});
  sim.RunToCompletion();
  EXPECT_DEATH(sim.ScheduleAt(50, []() {}), "scheduled in the past");
}

// --- pooled-engine specifics ------------------------------------------------

TEST(SimulatorPool, StaleHandleCannotTouchRecycledSlot) {
  Simulator sim(SimEngine::kTimingWheel);
  bool a_fired = false;
  bool b_fired = false;
  EventHandle a = sim.ScheduleAt(10, [&]() { a_fired = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(a_fired);
  EXPECT_FALSE(a.valid());
  // B recycles A's pool slot (single free slot, LIFO freelist); A's stale
  // handle must neither see nor cancel it.
  EventHandle b = sim.ScheduleAt(20, [&]() { b_fired = true; });
  a.Cancel();
  EXPECT_TRUE(b.valid());
  sim.RunToCompletion();
  EXPECT_TRUE(b_fired);
}

TEST(SimulatorPool, SelfCancelDuringDispatchIsInert) {
  Simulator sim(SimEngine::kTimingWheel);
  EventHandle handle;
  bool chained_fired = false;
  handle = sim.ScheduleAt(10, [&]() {
    // The event is already running: cancelling it (or any stale alias of
    // its slot) must not damage the slot or the event scheduled next, which
    // will recycle it.
    handle.Cancel();
    sim.ScheduleAt(20, [&]() { chained_fired = true; });
  });
  sim.RunToCompletion();
  EXPECT_TRUE(chained_fired);
  EXPECT_EQ(sim.Now(), 20u);
}

TEST(SimulatorPool, StopMidDispatchPreservesWheelState) {
  Simulator sim(SimEngine::kTimingWheel);
  std::vector<int> order;
  // Spread across many level-0 ticks and into level 1.
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAt(100 + static_cast<Time>(i) * 1000,
                   [&order, i]() { order.push_back(i); });
  }
  sim.ScheduleAt(100 + 25 * 1000 + 1, [&]() { sim.Stop(); });
  sim.RunToCompletion();
  EXPECT_EQ(order.size(), 26u);  // 0..25 ran, then the stop event
  // Resume: the remaining events dispatch in order with nothing lost.
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorPool, FarFutureTimersCrossWheelLevelsAndOverflow) {
  Simulator sim(SimEngine::kTimingWheel);
  // Exponentially spread timers: levels 0..3 and, beyond ~4.3 s, the
  // overflow heap (2^32 ns exceeds the wheel span of 2^24 ticks * 256 ns).
  std::vector<Time> times;
  for (int k = 0; k < 40; ++k) {
    times.push_back((Time{1} << k) + static_cast<Time>(k) * 7);
  }
  std::vector<Time> fired;
  // Schedule in reverse so arrival order disagrees with time order.
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const Time when = *it;
    sim.ScheduleAt(when, [&fired, &sim]() { fired.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  EXPECT_GT(sim.engine_stats().overflow_inserts, 0u);
  std::sort(times.begin(), times.end());
  EXPECT_EQ(fired, times);
}

TEST(SimulatorPool, FullLevelRevolutionDistanceIsNotLost) {
  // Regression: a delta whose window delta wraps a full level revolution
  // (dispatch at tick 63, then +4095 ticks => level-1 window delta of
  // exactly 64) used to be filed into the bucket covering cur_tick_, which
  // NextOccupiedTick treats as always empty — the event never fired.
  Simulator sim(SimEngine::kTimingWheel);
  bool fired = false;
  sim.ScheduleAt(63 * 256, [&]() {
    sim.ScheduleAfter(4095 * 256, [&]() { fired = true; });
  });
  sim.RunToCompletion();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.Now(), Time{63 * 256} + 4095 * 256);
}

TEST(SimulatorPool, RevolutionBoundariesFireFromEveryAnchor) {
  // Anchors sit just below each level's rollover; deltas straddle every
  // level's full revolution (64^k - 1, 64^k, 64^k + 1 ticks) so the window
  // delta wraps at each level and crosses the overflow boundary. Each pair
  // runs in its own simulator: with no unrelated event advancing the wheel,
  // a misfiled bucket can never be rescued by a coincidental cascade.
  for (const Time anchor :
       {Time{63} * 256, Time{4095} * 256, ((Time{1} << 18) - 1) * 256,
        ((Time{1} << 24) - 1) * 256}) {
    for (int level = 1; level <= 4; ++level) {
      const uint64_t revolution = uint64_t{1} << (6 * level);
      for (const uint64_t delta : {revolution - 1, revolution, revolution + 1}) {
        Simulator sim(SimEngine::kTimingWheel);
        Time fired = 0;
        sim.ScheduleAt(anchor, [&sim, &fired, delta]() {
          sim.ScheduleAfter(delta * 256, [&sim, &fired]() { fired = sim.Now(); });
        });
        sim.RunToCompletion();
        EXPECT_EQ(fired, anchor + delta * 256)
            << "anchor " << anchor << " delta " << delta;
        EXPECT_EQ(sim.pending_events(), 0u);
      }
    }
  }
}

TEST(SimulatorPool, EarlierEventScheduledAfterPartialRunDispatchesFirst) {
  // Regression: RefillReady advances the wheel to the next occupied tick
  // even when that tick's events turn out to be past the horizon. An event
  // then scheduled into the skipped gap underflowed the insertion distance,
  // landed in overflow, and dispatched after the later event — with Now()
  // running backward.
  Simulator sim(SimEngine::kTimingWheel);
  std::vector<Time> fired;
  auto record = [&fired, &sim]() { fired.push_back(sim.Now()); };
  sim.ScheduleAt(1124, record);
  EXPECT_EQ(sim.RunUntil(1074), 0u);
  sim.ScheduleAt(500, record);
  sim.RunUntil(2000);
  EXPECT_EQ(fired, (std::vector<Time>{500, 1124}));
}

TEST(Simulator, FiredHandleIsInvalidOnBothEngines) {
  for (const SimEngine engine :
       {SimEngine::kTimingWheel, SimEngine::kReference}) {
    Simulator sim(engine);
    EventHandle handle = sim.ScheduleAt(10, []() {});
    EXPECT_TRUE(handle.valid());
    sim.RunToCompletion();
    EXPECT_FALSE(handle.valid());
    handle.Cancel();  // inert on a fired event
    EXPECT_EQ(sim.engine_stats().cancelled, 0u);
  }
}

struct SteadyTick {
  Simulator* sim;
  uint64_t* remaining;
  uint64_t* lcg;
  void operator()() const {
    if (*remaining > 0) {
      --*remaining;
      *lcg = *lcg * 6364136223846793005ull + 1442695040888963407ull;
      sim->ScheduleAfter(100 + (*lcg >> 33) % 5'000,
                         SteadyTick{sim, remaining, lcg});
    }
  }
};

TEST(SimulatorPool, SteadyStateDispatchDoesNotAllocate) {
  Simulator sim(SimEngine::kTimingWheel);
  uint64_t remaining = 20'000;
  uint64_t lcg = 999;
  for (uint64_t i = 0; i < 64; ++i) {
    sim.ScheduleAfter(100 + i, SteadyTick{&sim, &remaining, &lcg});
  }
  // Warmup: grow the pool, ready heap, and wheel to their high-water marks.
  while (remaining > 10'000) {
    sim.RunUntil(sim.Now() + 100 * kMicrosecond);
  }
  const uint64_t internal_before = sim.engine_stats().internal_allocs();
  const uint64_t global_before = ThreadAllocs();
  sim.RunToCompletion();
  EXPECT_GT(sim.engine_stats().dispatched, 19'000u);
  // The engine's own accounting and this thread's operator new both agree:
  // a steady-state schedule/dispatch window allocates nothing. (Per-thread
  // so engines running on other shards' threads can't trip this gate.)
  EXPECT_EQ(sim.engine_stats().internal_allocs(), internal_before);
  EXPECT_EQ(ThreadAllocs(), global_before);
}

TEST(SimulatorPool, LargeCallbacksSpillToHeapAndStillRun) {
  Simulator sim(SimEngine::kTimingWheel);
  // 64 bytes of captured payload: over the inline budget, so the engine
  // heap-boxes the callback and counts it.
  uint64_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t sum = 0;
  sim.ScheduleAt(10, [payload, &sum]() {
    for (uint64_t v : payload) {
      sum += v;
    }
  });
  sim.RunToCompletion();
  EXPECT_EQ(sum, 36u);
  EXPECT_EQ(sim.engine_stats().large_callbacks, 1u);
}

// Randomized schedule/cancel program dispatched on both engines: traces
// (event identity and final clock) must match exactly. The program mixes
// same-time ties, nested scheduling from callbacks, cancellations, a
// partial RunUntil, and far-future times that exercise the overflow heap.
std::vector<uint64_t> DifferentialTrace(SimEngine engine) {
  Simulator sim(engine);
  std::vector<uint64_t> trace;
  uint64_t lcg = 0xabcdef12345ull;
  auto rnd = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  std::vector<EventHandle> handles;
  for (uint64_t id = 0; id < 400; ++id) {
    const Time when = (rnd() % 64) == 0
                          ? 4'500'000'000ull + rnd() % 1'000'000'000ull
                          : rnd() % 50'000'000ull;
    handles.push_back(sim.ScheduleAt(when, [&trace, &sim, id]() {
      trace.push_back(id);
      if (id % 3 == 0) {
        sim.ScheduleAfter(1 + id % 1'000, [&trace, id]() {
          trace.push_back(10'000 + id);
        });
      }
    }));
  }
  for (size_t i = 0; i < handles.size(); i += 7) {
    handles[i].Cancel();
  }
  sim.RunUntil(20'000'000);
  trace.push_back(sim.engine_stats().dispatched);
  sim.RunToCompletion();
  trace.push_back(sim.Now());
  trace.push_back(sim.engine_stats().dispatched);
  return trace;
}

TEST(SimulatorDifferential, WheelMatchesReferenceOnRandomProgram) {
  EXPECT_EQ(DifferentialTrace(SimEngine::kTimingWheel),
            DifferentialTrace(SimEngine::kReference));
}

TEST(Simulator, DefaultEngineOverrideIsHonored) {
  Simulator::SetDefaultEngine(SimEngine::kReference);
  Simulator ref_sim;
  EXPECT_EQ(ref_sim.engine(), SimEngine::kReference);
  Simulator::SetDefaultEngine(SimEngine::kTimingWheel);
  Simulator wheel_sim;
  EXPECT_EQ(wheel_sim.engine(), SimEngine::kTimingWheel);
  Simulator::ResetDefaultEngine();
}

}  // namespace
}  // namespace syrup
