#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace syrup {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&]() { order.push_back(3); });
  sim.ScheduleAt(10, [&]() { order.push_back(1); });
  sim.ScheduleAt(20, [&]() { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(Simulator, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i]() { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&]() { ++fired; });
  sim.ScheduleAt(100, [&]() { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 10u);  // clock rests at the last dispatched event
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000u);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) {
      sim.ScheduleAfter(1, chain);
    }
  };
  sim.ScheduleAfter(1, chain);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleAt(10, [&]() { fired = true; });
  EXPECT_TRUE(handle.valid());
  handle.Cancel();
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  EventHandle handle = sim.ScheduleAt(10, []() {});
  handle.Cancel();
  handle.Cancel();  // no crash
  EXPECT_FALSE(handle.valid());
  sim.RunToCompletion();
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&]() { order.push_back(1); });
  EventHandle second = sim.ScheduleAt(20, [&]() { order.push_back(2); });
  sim.ScheduleAt(30, [&]() { order.push_back(3); });
  second.Cancel();
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StopHaltsDispatch) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&]() {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(20, [&]() { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
  // A later run resumes from where it stopped.
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ReturnsDispatchCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(static_cast<Time>(i + 1), []() {});
  }
  EXPECT_EQ(sim.RunToCompletion(), 5u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(100, []() {});
  sim.RunToCompletion();
  EXPECT_DEATH(sim.ScheduleAt(50, []() {}), "scheduled in the past");
}

}  // namespace
}  // namespace syrup
