// syrupd tests: the deployment workflow (Fig. 3), the Table-1 API, and the
// multi-tenancy / isolation guarantees of §3.5 and §4.3.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/bpf/jit.h"
#include "src/core/root_dispatcher.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/net/stack.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

Packet MakePacket(uint16_t dst_port, uint16_t src_port = 20'000) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a0000ff;
  pkt.tuple.src_port = src_port;
  pkt.tuple.dst_port = dst_port;
  pkt.SetHeader(ReqType::kGet, 1, 0, 1, 0);
  return pkt;
}

class SyrupdTest : public testing::Test {
 protected:
  SyrupdTest() : stack_(sim_, Config()), syrupd_(sim_, &stack_) {}

  static StackConfig Config() {
    StackConfig config;
    config.num_nic_queues = 2;
    return config;
  }

  Simulator sim_;
  HostStack stack_;
  Syrupd syrupd_;
};

// --- app registration -------------------------------------------------------------

TEST_F(SyrupdTest, RegisterAppAndPorts) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000);
  ASSERT_TRUE(app.ok());
  EXPECT_TRUE(syrupd_.AddPort(*app, 9001).ok());
}

TEST_F(SyrupdTest, PortConflictRejected) {
  ASSERT_TRUE(syrupd_.RegisterApp("a", 1000, 9000).ok());
  EXPECT_EQ(syrupd_.RegisterApp("b", 2000, 9000).status().code(),
            StatusCode::kAlreadyExists);
  auto b = syrupd_.RegisterApp("b", 2000, 9001);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(syrupd_.AddPort(*b, 9000).code(), StatusCode::kAlreadyExists);
}

// --- deployment workflow -----------------------------------------------------------

TEST_F(SyrupdTest, DeploysVerifiedPolicyFile) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  auto fd = client.syr_deploy_policy(RoundRobinPolicyAsm(4),
                                     Hook::kSocketSelect);
  ASSERT_TRUE(fd.ok()) << fd.status();
  EXPECT_GT(*fd, 0);
}

TEST_F(SyrupdTest, RejectsUnverifiablePolicy) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  // Reads the packet without a bounds check: must never reach a hook.
  auto fd = client.syr_deploy_policy(R"(
    ldxw r0, [r1+0]
    exit
  )", Hook::kSocketSelect);
  ASSERT_FALSE(fd.ok());
  EXPECT_NE(fd.status().message().find("verifier"), std::string::npos);
  // And no dispatcher was installed.
  EXPECT_FALSE(static_cast<bool>(stack_.hooks().socket_select));
}

TEST_F(SyrupdTest, RejectsSyntacticallyBrokenPolicy) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  EXPECT_FALSE(client.syr_deploy_policy("not a program", Hook::kXdpDrv).ok());
}

TEST_F(SyrupdTest, DeclaredMapsArePinnedUnderAppPath) {
  auto app = syrupd_.RegisterApp("rocksdb", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  ASSERT_TRUE(client.syr_deploy_policy(ScanAvoidPolicyAsm(4),
                                       Hook::kSocketSelect)
                  .ok());
  EXPECT_TRUE(
      syrupd_.registry().Open("/syrup/rocksdb/scan_map", 1000).ok());
  // A different uid cannot open the pin.
  EXPECT_FALSE(
      syrupd_.registry().Open("/syrup/rocksdb/scan_map", 2000).ok());
}

TEST_F(SyrupdTest, RedeployReusesPinnedMapState) {
  auto app = syrupd_.RegisterApp("rocksdb", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  ASSERT_TRUE(client.syr_deploy_policy(RoundRobinPolicyAsm(4),
                                       Hook::kSocketSelect)
                  .ok());
  auto map =
      syrupd_.registry().Open("/syrup/rocksdb/rr_state", 1000).value();
  ASSERT_TRUE(map->UpdateU64(0, 41).ok());
  // Redeploy (policy update at runtime, §3.1): counter state survives.
  ASSERT_TRUE(client.syr_deploy_policy(RoundRobinPolicyAsm(4),
                                       Hook::kSocketSelect)
                  .ok());
  auto again =
      syrupd_.registry().Open("/syrup/rocksdb/rr_state", 1000).value();
  EXPECT_EQ(again->LookupU64(0).value(), 41u);
  EXPECT_EQ(again.get(), map.get());
}

TEST_F(SyrupdTest, ExternMapRequiresPermission) {
  auto owner = syrupd_.RegisterApp("owner", 1000, 9000).value();
  auto other = syrupd_.RegisterApp("other", 2000, 9001).value();
  MapSpec spec;
  spec.max_entries = 4;
  ASSERT_TRUE(syrupd_.MapCreate(owner, spec, "/pins/private").ok());

  const std::string policy = R"(
    .extern_map m /pins/private
    mov r0, PASS
    exit
  )";
  SyrupClient other_client(syrupd_, other);
  auto result = other_client.syr_deploy_policy(policy, Hook::kSocketSelect);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);

  SyrupClient owner_client(syrupd_, owner);
  EXPECT_TRUE(
      owner_client.syr_deploy_policy(policy, Hook::kSocketSelect).ok());
}

TEST_F(SyrupdTest, RemovePolicyRestoresDefault) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(app,
                                      std::make_shared<RoundRobinPolicy>(4),
                                      Hook::kSocketSelect)
                  .ok());
  EXPECT_TRUE(static_cast<bool>(stack_.hooks().socket_select));
  ASSERT_TRUE(syrupd_.RemovePolicy(app, Hook::kSocketSelect).ok());
  EXPECT_FALSE(static_cast<bool>(stack_.hooks().socket_select));
  EXPECT_EQ(syrupd_.RemovePolicy(app, Hook::kSocketSelect).code(),
            StatusCode::kNotFound);
}

TEST_F(SyrupdTest, ThreadHookRejectsPolicyFiles) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  EXPECT_FALSE(
      client.syr_deploy_policy("mov r0, 0\nexit\n", Hook::kThreadScheduler)
          .ok());
}

TEST_F(SyrupdTest, UnknownAppRejected) {
  EXPECT_FALSE(syrupd_
                   .DeployNativePolicy(999,
                                       std::make_shared<RoundRobinPolicy>(4),
                                       Hook::kSocketSelect)
                   .ok());
}

// --- isolation (§4.3) ----------------------------------------------------------------

TEST_F(SyrupdTest, PoliciesOnlySeeOwnTraffic) {
  auto app_a = syrupd_.RegisterApp("a", 1000, 9000).value();
  auto app_b = syrupd_.RegisterApp("b", 2000, 9001).value();

  // Counting policies so we can observe exactly which packets each saw.
  class CountingPolicy : public PacketPolicy {
   public:
    Decision Schedule(const PacketView& pkt) override {
      ++seen;
      last_port = pkt.DstPort();
      return 0;
    }
    std::string_view name() const override { return "counting"; }
    int seen = 0;
    uint16_t last_port = 0;
  };
  auto policy_a = std::make_shared<CountingPolicy>();
  auto policy_b = std::make_shared<CountingPolicy>();
  ASSERT_TRUE(
      syrupd_.DeployNativePolicy(app_a, policy_a, Hook::kSocketSelect).ok());
  ASSERT_TRUE(
      syrupd_.DeployNativePolicy(app_b, policy_b, Hook::kSocketSelect).ok());

  stack_.GetOrCreateGroup(9000)->AddSocket(16);
  stack_.GetOrCreateGroup(9001)->AddSocket(16);

  for (int i = 0; i < 3; ++i) {
    stack_.Rx(MakePacket(9000));
  }
  stack_.Rx(MakePacket(9001));
  sim_.RunToCompletion();

  EXPECT_EQ(policy_a->seen, 3);
  EXPECT_EQ(policy_a->last_port, 9000u);
  EXPECT_EQ(policy_b->seen, 1);
  EXPECT_EQ(policy_b->last_port, 9001u);
}

TEST_F(SyrupdTest, MaliciousDropPolicyOnlyHurtsItsOwner) {
  auto app_a = syrupd_.RegisterApp("victim", 1000, 9000).value();
  auto app_b = syrupd_.RegisterApp("malicious", 2000, 9001).value();
  (void)app_a;
  // "b" drops everything it schedules.
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(
                      app_b, std::make_shared<ConstIndexPolicy>(kDrop),
                      Hook::kSocketSelect)
                  .ok());
  Socket* victim_sock = stack_.GetOrCreateGroup(9000)->AddSocket(16);
  Socket* malicious_sock = stack_.GetOrCreateGroup(9001)->AddSocket(16);

  stack_.Rx(MakePacket(9000));
  stack_.Rx(MakePacket(9001));
  sim_.RunToCompletion();

  EXPECT_EQ(victim_sock->queue_length(), 1u);    // unaffected
  EXPECT_EQ(malicious_sock->queue_length(), 0u); // self-inflicted drop
  EXPECT_EQ(stack_.stats().policy_drops, 1u);
}

TEST_F(SyrupdTest, UnmatchedPortPassesThrough) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(app,
                                      std::make_shared<RoundRobinPolicy>(1),
                                      Hook::kSocketSelect)
                  .ok());
  Socket* other = stack_.GetOrCreateGroup(7777)->AddSocket(16);
  stack_.Rx(MakePacket(7777));
  sim_.RunToCompletion();
  EXPECT_EQ(other->queue_length(), 1u);
  EXPECT_EQ(syrupd_.dispatch_stats(Hook::kSocketSelect).no_policy, 1u);
}

// --- map fd API ------------------------------------------------------------------------

TEST_F(SyrupdTest, MapFdLifecycle) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  MapSpec spec;
  spec.max_entries = 8;
  auto created = syrupd_.MapCreate(app, spec, "/pins/counters");
  ASSERT_TRUE(created.ok());

  auto fd = client.syr_map_open("/pins/counters");
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(client.syr_map_update_elem(*fd, 3, 300).ok());
  EXPECT_EQ(client.syr_map_lookup_elem(*fd, 3).value(), 300u);
  EXPECT_TRUE(client.syr_map_close(*fd).ok());
  EXPECT_FALSE(client.syr_map_lookup_elem(*fd, 3).ok());
  EXPECT_FALSE(client.syr_map_close(*fd).ok());
}

TEST_F(SyrupdTest, StatsSnapshotCarriesMapRuntimeGauges) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 64;
  spec.name = "flows";
  auto fd = syrupd_.MapCreate(app, spec, "/pins/flows");
  ASSERT_TRUE(fd.ok());
  auto map = syrupd_.MapByFd(*fd);
  for (uint32_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(map->UpdateU64(k, k).ok());
  }
  for (uint32_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(map->Delete(&k).ok());
  }

  const obs::Snapshot snap = syrupd_.StatsSnapshot();
  EXPECT_EQ(snap.GaugeValue("a", "map", "flows.occupancy"), 7);
  EXPECT_EQ(snap.GaugeValue("a", "map", "flows.tombstones"), 5);
  EXPECT_GE(snap.GaugeValue("a", "map", "flows.max_probe_len"), 1);
  EXPECT_GE(snap.GaugeValue("a", "map", "flows.epoch_lag"), 0);

  // Gauges refresh on every snapshot, not just the first.
  ASSERT_TRUE(map->UpdateU64(100, 1).ok());
  EXPECT_EQ(syrupd_.StatsSnapshot().GaugeValue("a", "map", "flows.occupancy"),
            8);
}

TEST_F(SyrupdTest, MapOpenEnforcesUid) {
  auto owner = syrupd_.RegisterApp("owner", 1000, 9000).value();
  auto other = syrupd_.RegisterApp("other", 2000, 9001).value();
  MapSpec spec;
  spec.max_entries = 8;
  ASSERT_TRUE(syrupd_.MapCreate(owner, spec, "/pins/m").ok());
  SyrupClient other_client(syrupd_, other);
  EXPECT_EQ(other_client.syr_map_open("/pins/m").status().code(),
            StatusCode::kPermissionDenied);
}

// --- bytecode path end to end ------------------------------------------------------------

TEST_F(SyrupdTest, BytecodePolicySteersPackets) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  ASSERT_TRUE(client.syr_deploy_policy(RoundRobinPolicyAsm(2),
                                       Hook::kSocketSelect)
                  .ok());
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  Socket* sock0 = group->AddSocket(64);
  Socket* sock1 = group->AddSocket(64);
  for (int i = 0; i < 10; ++i) {
    stack_.Rx(MakePacket(9000));
  }
  sim_.RunToCompletion();
  // Perfect 5/5 balance regardless of flow hashing.
  EXPECT_EQ(sock0->queue_length(), 5u);
  EXPECT_EQ(sock1->queue_length(), 5u);
}

// --- literal root dispatcher artifact -----------------------------------------------------

TEST(RootDispatcher, RoutesByPortViaTailCalls) {
  auto dispatcher = BuildRootDispatcher(8);
  ASSERT_TRUE(dispatcher.ok()) << dispatcher.status();

  // Two app policies: app A returns 10, app B returns 20.
  bpf::Program policy_a;
  {
    auto assembled = bpf::Assemble("mov r0, 10\nexit\n");
    policy_a.insns = assembled->insns;
    policy_a.name = "a";
  }
  bpf::Program policy_b;
  {
    auto assembled = bpf::Assemble("mov r0, 20\nexit\n");
    policy_b.insns = assembled->insns;
    policy_b.name = "b";
  }
  StatusOr<RouteHandle> route_a = dispatcher->AddRoute(9000, 0,
                                                       /*prog_id=*/101);
  ASSERT_TRUE(route_a.ok()) << route_a.status();
  StatusOr<RouteHandle> route_b = dispatcher->AddRoute(9001, 1,
                                                       /*prog_id=*/102);
  ASSERT_TRUE(route_b.ok()) << route_b.status();

  bpf::ExecEnv env;
  env.resolve_program = [&](uint64_t id) -> const bpf::Program* {
    if (id == 101) return &policy_a;
    if (id == 102) return &policy_b;
    return nullptr;
  };
  bpf::Interpreter interp(env);

  // Drive the literal program through the batch entry point (the VM
  // mirror of Syrupd::DispatchBatch).
  const Packet p0 = MakePacket(9000);
  const Packet p1 = MakePacket(9001);
  const Packet p2 = MakePacket(9000);
  const PacketView views[3] = {PacketView::Of(p0), PacketView::Of(p1),
                               PacketView::Of(p2)};
  Decision decisions[3] = {};
  const Status batch = dispatcher->DispatchBatch(interp, views, decisions);
  ASSERT_TRUE(batch.ok()) << batch;
  EXPECT_EQ(decisions[0], 10u);
  EXPECT_EQ(decisions[1], 20u);
  EXPECT_EQ(decisions[2], 10u);

  // Dropping a route handle withdraws the route: port 9001 reverts to
  // PASS while 9000 keeps routing.
  ASSERT_TRUE(route_b->Remove().ok());
  Decision after[3] = {};
  ASSERT_TRUE(dispatcher->DispatchBatch(interp, views, after).ok());
  EXPECT_EQ(after[0], 10u);
  EXPECT_EQ(after[1], kPass);
  EXPECT_EQ(after[2], 10u);

  // A stale handle never tears down a newer route: re-point slot 0 at
  // program 102 via a fresh route, then let the original 9000 handle go
  // out of scope — the new route must survive.
  {
    StatusOr<RouteHandle> replaced = dispatcher->AddRoute(9000, 0,
                                                          /*prog_id=*/102);
    ASSERT_TRUE(replaced.ok());
    replaced->Release();  // permanent
  }
  {
    RouteHandle stale = std::move(route_a).value();
    // `stale` drops here; slot 0 no longer holds prog 101, so the
    // conditional remove is a no-op.
  }
  Decision still[1] = {};
  const PacketView one[1] = {PacketView::Of(p0)};
  ASSERT_TRUE(dispatcher->DispatchBatch(interp, one, still).ok());
  EXPECT_EQ(still[0], 20u);

  // Unowned port: default policy passes.
  const Packet unowned = MakePacket(9002);
  const PacketView unowned_view[1] = {PacketView::Of(unowned)};
  Decision unowned_decision[1] = {};
  ASSERT_TRUE(
      dispatcher->DispatchBatch(interp, unowned_view, unowned_decision).ok());
  EXPECT_EQ(unowned_decision[0], kPass);
}

TEST(RootDispatcher, RuntPacketPasses) {
  auto dispatcher = BuildRootDispatcher(8);
  ASSERT_TRUE(dispatcher.ok());
  bpf::Interpreter interp(bpf::ExecEnv{});
  uint8_t tiny[2] = {0, 1};
  auto result = interp.Run(*dispatcher->program,
                           reinterpret_cast<uint64_t>(tiny),
                           reinterpret_cast<uint64_t>(tiny + 2), true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<uint32_t>(result->r0), kPass);
}


TEST_F(SyrupdTest, ListDeploymentsReportsAttachedPolicies) {
  auto app_a = syrupd_.RegisterApp("alpha", 1000, 9000).value();
  auto app_b = syrupd_.RegisterApp("beta", 2000, 9001).value();
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(app_a,
                                      std::make_shared<RoundRobinPolicy>(4),
                                      Hook::kSocketSelect)
                  .ok());
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(app_b,
                                      std::make_shared<SitaPolicy>(4),
                                      Hook::kXdpSkb)
                  .ok());
  auto deployments = syrupd_.ListDeployments();
  ASSERT_EQ(deployments.size(), 2u);
  bool saw_rr = false, saw_sita = false;
  for (const auto& d : deployments) {
    if (d.policy_name == "round_robin") {
      saw_rr = true;
      EXPECT_EQ(d.app_name, "alpha");
      EXPECT_EQ(d.port, 9000u);
      EXPECT_EQ(d.hook, Hook::kSocketSelect);
    }
    if (d.policy_name == "sita") {
      saw_sita = true;
      EXPECT_EQ(d.app_name, "beta");
      EXPECT_EQ(d.hook, Hook::kXdpSkb);
    }
  }
  EXPECT_TRUE(saw_rr);
  EXPECT_TRUE(saw_sita);
  // Removal is reflected.
  ASSERT_TRUE(syrupd_.RemovePolicy(app_a, Hook::kSocketSelect).ok());
  EXPECT_EQ(syrupd_.ListDeployments().size(), 1u);
}

TEST_F(SyrupdTest, ExecEnvIsDeterministicPerSeed) {
  Simulator sim_a, sim_b;
  Syrupd a(sim_a, nullptr, 42), b(sim_b, nullptr, 42);
  auto env_a = a.MakeExecEnv();
  auto env_b = b.MakeExecEnv();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(env_a.random_u32(), env_b.random_u32());
  }
}

TEST_F(SyrupdTest, ExecEnvTimeTracksSimulator) {
  auto env = syrupd_.MakeExecEnv();
  EXPECT_EQ(env.ktime_ns(), 0u);
  sim_.ScheduleAt(12'345, []() {});
  sim_.RunToCompletion();
  EXPECT_EQ(env.ktime_ns(), 12'345u);
}

// --- observability (StatsSnapshot) --------------------------------------------------------

TEST_F(SyrupdTest, StatsSnapshotCountsMatchDispatchDecisions) {
  auto app = syrupd_.RegisterApp("alpha", 1000, 9000).value();
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(app,
                                      std::make_shared<RoundRobinPolicy>(2),
                                      Hook::kSocketSelect)
                  .ok());
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(64);
  group->AddSocket(64);
  stack_.GetOrCreateGroup(7777)->AddSocket(64);

  for (int i = 0; i < 6; ++i) {
    stack_.Rx(MakePacket(9000));
  }
  stack_.Rx(MakePacket(7777));  // no policy owns this port
  sim_.RunToCompletion();

  const obs::Snapshot snap = syrupd_.StatsSnapshot();
  // Per-hook dispatcher accounting.
  EXPECT_EQ(snap.CounterValue("syrupd", "socket_select", "dispatched"), 6u);
  EXPECT_EQ(snap.CounterValue("syrupd", "socket_select", "no_policy"), 1u);
  EXPECT_EQ(snap.CounterValue("syrupd", "socket_select", "decision_steer"),
            6u);
  EXPECT_EQ(snap.CounterValue("syrupd", "socket_select", "decision_drop"),
            0u);
  // Per-app attribution.
  EXPECT_EQ(snap.CounterValue("alpha", "socket_select", "dispatched"), 6u);
  // The dispatch_stats() accessor reads the same cells.
  EXPECT_EQ(syrupd_.dispatch_stats(Hook::kSocketSelect).dispatched, 6u);
  EXPECT_EQ(syrupd_.dispatch_stats(Hook::kSocketSelect).no_policy, 1u);
  // Host-stack accounting flows into the same registry.
  EXPECT_EQ(snap.CounterValue("host", "stack", "rx_packets"), 7u);
}

TEST_F(SyrupdTest, StatsSnapshotClassifiesDropDecisions) {
  auto app = syrupd_.RegisterApp("dropper", 1000, 9000).value();
  ASSERT_TRUE(syrupd_
                  .DeployNativePolicy(
                      app, std::make_shared<ConstIndexPolicy>(kDrop),
                      Hook::kSocketSelect)
                  .ok());
  stack_.GetOrCreateGroup(9000)->AddSocket(64);
  for (int i = 0; i < 3; ++i) {
    stack_.Rx(MakePacket(9000));
  }
  sim_.RunToCompletion();

  const obs::Snapshot snap = syrupd_.StatsSnapshot();
  EXPECT_EQ(snap.CounterValue("syrupd", "socket_select", "decision_drop"),
            3u);
  EXPECT_EQ(snap.CounterValue("syrupd", "socket_select", "decision_steer"),
            0u);
  EXPECT_EQ(snap.CounterValue("host", "stack", "policy_drops"), 3u);
}

TEST_F(SyrupdTest, StatsSnapshotTracksBytecodePolicyCounters) {
  auto app = syrupd_.RegisterApp("bc", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  PolicyHandle deployed =
      client.DeployPolicy(RoundRobinPolicyAsm(2), Hook::kSocketSelect)
          .value();
  ReuseportGroup* group = stack_.GetOrCreateGroup(9000);
  group->AddSocket(64);
  group->AddSocket(64);
  for (int i = 0; i < 4; ++i) {
    stack_.Rx(MakePacket(9000));
  }
  sim_.RunToCompletion();

  const obs::Snapshot snap = syrupd_.StatsSnapshot();
  EXPECT_EQ(snap.CounterValue("bc", "socket_select", "policy.invocations"),
            4u);
  EXPECT_GT(snap.CounterValue("bc", "socket_select", "policy.insns"), 0u);
  // The round-robin policy file calls map_lookup_elem once per decision.
  EXPECT_EQ(snap.CounterValue("bc", "socket_select", "policy.helper_calls"),
            4u);
  EXPECT_EQ(snap.CounterValue("bc", "socket_select", "policy.runtime_faults"),
            0u);
  // Its rr_state map was exercised through the instrumented Map layer.
  EXPECT_EQ(snap.CounterValue("bc", "map", "rr_state.lookups"), 4u);
  // JSON renders the whole tree.
  const std::string json = snap.ToJson(/*pretty=*/false);
  EXPECT_NE(json.find("\"policy.invocations\""), std::string::npos);
}

TEST_F(SyrupdTest, DeploymentPublishesVerifierStatsGauges) {
  auto app = syrupd_.RegisterApp("vf", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  PolicyHandle deployed =
      client.DeployPolicy(ScanAvoidPolicyAsm(4), Hook::kSocketSelect)
          .value();

  const obs::Snapshot snap = syrupd_.StatsSnapshot();
  // Every visited instruction costs at least one abstract step, and the
  // scan-avoid policy branches (probe loop), so states were forked.
  EXPECT_GT(snap.GaugeValue("vf", "socket_select", "verifier.visited_insns"),
            0);
  EXPECT_GT(snap.GaugeValue("vf", "socket_select", "verifier.branch_states"),
            0);
  EXPECT_GE(snap.GaugeValue("vf", "socket_select", "verifier.pruned_states"),
            0);
  EXPECT_GT(snap.GaugeValue("vf", "socket_select", "verifier.verify_ns"), 0);
}

TEST_F(SyrupdTest, ExecModeGaugeReportsEffectiveTier) {
  auto app = syrupd_.RegisterApp("em", 1000, 9000).value();
  SyrupClient client(syrupd_, app);

  // Requesting native must report what actually happened: the native tier
  // on hosts with a JIT, the compiled tier on hosts without one — never
  // the raw requested mode.
  syrupd_.set_exec_mode(bpf::ExecMode::kNative);
  {
    PolicyHandle deployed =
        client.DeployPolicy(RoundRobinPolicyAsm(2), Hook::kSocketSelect)
            .value();
    const obs::Snapshot snap = syrupd_.StatsSnapshot();
    const auto effective = static_cast<bpf::ExecMode>(
        snap.GaugeValue("em", "socket_select", "policy.exec_mode"));
    if (bpf::JitAvailable()) {
      EXPECT_EQ(effective, bpf::ExecMode::kNative);
      EXPECT_GT(snap.GaugeValue("em", "socket_select",
                                "policy.jit_code_bytes"),
                0);
      EXPECT_GT(snap.GaugeValue("em", "socket_select", "policy.jit_ns"), 0);
    } else {
      EXPECT_EQ(effective, bpf::ExecMode::kCompiled);
    }
  }

  // Forced fallback (the documented non-x86-64 behavior): still a native
  // request, but the gauge must say compiled.
  setenv("SYRUP_JIT_DISABLE", "1", 1);
  {
    PolicyHandle deployed =
        client.DeployPolicy(RoundRobinPolicyAsm(2), Hook::kSocketSelect)
            .value();
    const obs::Snapshot snap = syrupd_.StatsSnapshot();
    EXPECT_EQ(static_cast<bpf::ExecMode>(snap.GaugeValue(
                  "em", "socket_select", "policy.exec_mode")),
              bpf::ExecMode::kCompiled);
  }
  unsetenv("SYRUP_JIT_DISABLE");

  syrupd_.set_exec_mode(bpf::ExecMode::kInterpret);
  {
    PolicyHandle deployed =
        client.DeployPolicy(RoundRobinPolicyAsm(2), Hook::kSocketSelect)
            .value();
    const obs::Snapshot snap = syrupd_.StatsSnapshot();
    EXPECT_EQ(static_cast<bpf::ExecMode>(snap.GaugeValue(
                  "em", "socket_select", "policy.exec_mode")),
              bpf::ExecMode::kInterpret);
  }
}

// --- typed RAII handles -------------------------------------------------------------------

TEST_F(SyrupdTest, DroppedMapHandleClosesFd) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  MapSpec spec;
  spec.max_entries = 8;
  int raw_fd = -1;
  {
    MapHandle handle = client.MapCreate(spec, "/pins/scoped").value();
    raw_fd = handle.fd();
    ASSERT_TRUE(handle.Update(1, 100).ok());
    EXPECT_EQ(handle.Lookup(1).value(), 100u);
    EXPECT_NE(syrupd_.MapByFd(raw_fd), nullptr);
  }
  // The handle died: the fd is gone, the pin (and its data) survive.
  EXPECT_EQ(syrupd_.MapByFd(raw_fd), nullptr);
  EXPECT_FALSE(syrupd_.MapLookupElem(raw_fd, 1).ok());
  auto reopened = client.MapOpen("/pins/scoped");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Lookup(1).value(), 100u);
}

TEST_F(SyrupdTest, ReleasedMapHandleLeavesFdOpen) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  MapSpec spec;
  spec.max_entries = 8;
  int raw_fd = -1;
  {
    MapHandle handle = client.MapCreate(spec, "/pins/released").value();
    raw_fd = handle.Release();  // the shim path: caller owns the fd now
  }
  EXPECT_NE(syrupd_.MapByFd(raw_fd), nullptr);
  EXPECT_TRUE(client.syr_map_close(raw_fd).ok());
}

TEST_F(SyrupdTest, ReadOnlyMapHandleRejectsUpdates) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  MapSpec spec;
  spec.max_entries = 8;
  ASSERT_TRUE(client.MapCreate(spec, "/pins/ro").value().Update(2, 7).ok());

  MapHandle ro = client.MapOpen("/pins/ro", MapAccess::kRead).value();
  EXPECT_EQ(ro.access(), MapAccess::kRead);
  EXPECT_EQ(ro.Lookup(2).value(), 7u);
  EXPECT_EQ(ro.Update(2, 8).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(syrupd_.MapFdAccess(ro.fd()), MapAccess::kRead);
}

TEST_F(SyrupdTest, DroppedPolicyHandleDetaches) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  {
    PolicyHandle handle =
        client.DeployPolicy(RoundRobinPolicyAsm(2), Hook::kSocketSelect)
            .value();
    EXPECT_TRUE(handle.valid());
    EXPECT_EQ(handle.hook(), Hook::kSocketSelect);
    EXPECT_EQ(syrupd_.ListDeployments().size(), 1u);
  }
  EXPECT_EQ(syrupd_.ListDeployments().size(), 0u);
  EXPECT_FALSE(static_cast<bool>(stack_.hooks().socket_select));
}

TEST_F(SyrupdTest, StalePolicyHandleDoesNotDetachNewerDeployment) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  auto first =
      client.DeployPolicy(RoundRobinPolicyAsm(2), Hook::kSocketSelect)
          .value();
  // Redeploy (policy update at runtime): `first` is now stale.
  auto second =
      client.DeployPolicy(RoundRobinPolicyAsm(4), Hook::kSocketSelect)
          .value();
  EXPECT_NE(first.prog_id(), second.prog_id());

  // Dropping the stale handle must not tear down the live deployment.
  { PolicyHandle dying = std::move(first); }
  EXPECT_EQ(syrupd_.ListDeployments().size(), 1u);
  EXPECT_NE(syrupd_.PolicyAt(Hook::kSocketSelect, 9000), nullptr);

  // Dropping the live handle does.
  EXPECT_TRUE(second.Detach().ok());
  EXPECT_EQ(syrupd_.ListDeployments().size(), 0u);
}

TEST_F(SyrupdTest, ProgramByIdResolvesDeployedBytecode) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  auto prog_id = client.syr_deploy_policy(RoundRobinPolicyAsm(4),
                                          Hook::kSocketSelect);
  ASSERT_TRUE(prog_id.ok());
  const bpf::Program* program =
      syrupd_.ProgramById(static_cast<uint64_t>(*prog_id));
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->name, "round_robin");
  EXPECT_EQ(syrupd_.ProgramById(999'999), nullptr);
}

// --- deploy-time WCET budgets ------------------------------------------------

// Verifiable (the loop bound is concrete) but far too slow for a tight
// packet hook: the compiled-tier wcet is ~3 us against xdp_offload's 1 us
// budget.
constexpr char kBurnerPolicy[] = R"(
.name burner
.ctx packet
  mov r6, 0
  mov r0, 0
loop:
  jge r6, 600, done
  add r0, 3
  add r6, 1
  ja loop
done:
  exit
)";

TEST_F(SyrupdTest, OverBudgetPolicyRejectedAtTightHook) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  auto fd = client.syr_deploy_policy(kBurnerPolicy, Hook::kXdpOffload);
  ASSERT_FALSE(fd.ok());
  // The rejection names the worst-case cost, the budget, and the concrete
  // hottest path so the author can see where the time goes.
  EXPECT_NE(fd.status().message().find("worst-case path"),
            std::string::npos)
      << fd.status();
  EXPECT_NE(fd.status().message().find("hottest path"), std::string::npos);
  EXPECT_NE(fd.status().message().find("xdp_offload"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(stack_.hooks().xdp_offload));
  // The same program fits the looser socket_select budget.
  EXPECT_TRUE(
      client.syr_deploy_policy(kBurnerPolicy, Hook::kSocketSelect).ok());
}

TEST_F(SyrupdTest, OverBudgetOverrideAdmitsWithWarningGauge) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  CostBudgetConfig budget = syrupd_.cost_budget_config();
  budget.admit_over_budget = true;
  syrupd_.set_cost_budget_config(budget);
  auto fd = client.syr_deploy_policy(kBurnerPolicy, Hook::kXdpOffload);
  ASSERT_TRUE(fd.ok()) << fd.status();
  const obs::Snapshot snapshot = syrupd_.StatsSnapshot();
  EXPECT_EQ(snapshot.GaugeValue("a", "xdp_offload", "policy.over_budget"),
            1);
  EXPECT_GT(snapshot.GaugeValue("a", "xdp_offload", "policy.wcet_ns"),
            1000);
  EXPECT_GT(snapshot.GaugeValue("a", "xdp_offload", "policy.wcet_insns"),
            0);
}

TEST_F(SyrupdTest, InBudgetPolicyPublishesWcetGauges) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  ASSERT_TRUE(client
                  .syr_deploy_policy(RoundRobinPolicyAsm(4),
                                     Hook::kSocketSelect)
                  .ok());
  const obs::Snapshot snapshot = syrupd_.StatsSnapshot();
  EXPECT_GT(snapshot.GaugeValue("a", "socket_select", "policy.wcet_ns"),
            0);
  EXPECT_GT(snapshot.GaugeValue("a", "socket_select", "policy.wcet_insns"),
            0);
  EXPECT_EQ(snapshot.GaugeValue("a", "socket_select", "policy.over_budget"),
            0);
}

TEST_F(SyrupdTest, DisabledEnforcementAdmitsOverBudgetPolicy) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  CostBudgetConfig budget = syrupd_.cost_budget_config();
  budget.enforce = false;
  syrupd_.set_cost_budget_config(budget);
  EXPECT_TRUE(
      client.syr_deploy_policy(kBurnerPolicy, Hook::kXdpOffload).ok());
}

// --- deployment interference analysis ----------------------------------------

TEST_F(SyrupdTest, AnalyzeDeploymentsFlagsCrossAppWriteWrite) {
  auto alpha = syrupd_.RegisterApp("alpha", 1000, 9000).value();
  auto beta = syrupd_.RegisterApp("beta", 2000, 9001).value();
  MapSpec spec;
  spec.max_entries = 4;
  PinMode world;
  world.world_readable = true;
  world.world_writable = true;
  ASSERT_TRUE(syrupd_.MapCreate(alpha, spec, "/pins/shared", world).ok());

  const std::string writer = R"(
.name writer
.ctx packet
.extern_map m /pins/shared
  stw [r10-4], 0
  stdw [r10-16], 1
  ldmapfd r1, m
  mov r2, r10
  add r2, -4
  mov r3, r10
  add r3, -16
  call map_update_elem
  mov r0, PASS
  exit
)";
  SyrupClient alpha_client(syrupd_, alpha);
  SyrupClient beta_client(syrupd_, beta);
  ASSERT_TRUE(
      alpha_client.syr_deploy_policy(writer, Hook::kSocketSelect).ok());
  ASSERT_TRUE(
      beta_client.syr_deploy_policy(writer, Hook::kSocketSelect).ok());

  const DeploymentAnalysis analysis = syrupd_.AnalyzeDeployments();
  ASSERT_TRUE(analysis.HasErrors());
  bool found = false;
  for (const InterferenceFinding& f : analysis.findings) {
    if (f.category != "write-write") {
      continue;
    }
    found = true;
    EXPECT_EQ(f.level, InterferenceFinding::Level::kError);
    EXPECT_EQ(f.map, "/pins/shared");
    EXPECT_NE(f.detail.find("alpha/socket_select/writer"),
              std::string::npos);
    EXPECT_NE(f.detail.find("beta/socket_select/writer"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
  // The shared row names both writers against the pin path.
  bool row_found = false;
  for (const MapInterferenceRow& row : analysis.rows) {
    if (row.map == "/pins/shared") {
      row_found = true;
      EXPECT_EQ(row.writers.size(), 2u);
    }
  }
  EXPECT_TRUE(row_found);
  // JSON rendering is well-formed enough to carry the same error.
  EXPECT_NE(analysis.ToJson().find("\"level\":\"error\""),
            std::string::npos);
}

TEST_F(SyrupdTest, AnalyzeDeploymentsSingleAppIsErrorFree) {
  auto app = syrupd_.RegisterApp("a", 1000, 9000).value();
  SyrupClient client(syrupd_, app);
  ASSERT_TRUE(client
                  .syr_deploy_policy(RoundRobinPolicyAsm(4),
                                     Hook::kSocketSelect)
                  .ok());
  const DeploymentAnalysis analysis = syrupd_.AnalyzeDeployments();
  EXPECT_FALSE(analysis.HasErrors());
  // Round robin reads and writes its own cursor map: one row, no
  // write-write finding, but an uncacheable info naming the store.
  ASSERT_EQ(analysis.rows.size(), 1u);
  EXPECT_EQ(analysis.rows[0].readers.size(), 1u);
  EXPECT_EQ(analysis.rows[0].writers.size(), 1u);
  bool uncacheable = false;
  for (const InterferenceFinding& f : analysis.findings) {
    if (f.category == "uncacheable") {
      uncacheable = true;
      EXPECT_EQ(f.level, InterferenceFinding::Level::kInfo);
      EXPECT_NE(f.detail.find("insn"), std::string::npos);
    }
  }
  EXPECT_TRUE(uncacheable);
}

}  // namespace
}  // namespace syrup
