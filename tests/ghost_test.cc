#include <gtest/gtest.h>

#include <vector>

#include "src/ghost/ghost.h"
#include "src/map/map.h"
#include "src/policies/ghost_policies.h"
#include "src/sched/machine.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

struct GhostRig {
  explicit GhostRig(int cores, int managed, GhostPolicy& policy)
      : machine(sim, cores), sched(machine, policy, Config(managed)) {
    machine.SetScheduler(&sched);
  }

  static GhostConfig Config(int managed) {
    GhostConfig config;
    config.num_managed_cores = managed;
    return config;
  }

  Simulator sim;
  Machine machine;
  GhostScheduler sched;
};

TEST(Ghost, PlacesThreadAfterMessageAndCommitDelays) {
  FcfsGhostPolicy policy;
  GhostRig rig(2, 1, policy);
  Thread* thread = rig.machine.CreateThread("t");
  Time done = 0;
  thread->SetSegmentDoneCallback([&]() { done = rig.sim.Now(); });
  rig.machine.AddWork(thread, 100);
  rig.machine.Wake(thread);
  rig.sim.RunToCompletion();
  const GhostConfig config = GhostRig::Config(1);
  // Wakeup -> message delay -> per-message cost -> commit delay -> 100ns.
  const Time expected = config.message_delay + config.per_message_cost +
                        config.commit_delay + 100;
  EXPECT_EQ(done, expected);
  EXPECT_GE(rig.sched.messages_processed(), 1u);
  EXPECT_EQ(rig.sched.commits(), 1u);
}

TEST(Ghost, NeverUsesUnmanagedCores) {
  FcfsGhostPolicy policy;
  GhostRig rig(4, 2, policy);  // cores 2,3 reserved (agent + spare)
  std::vector<Thread*> threads;
  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    Thread* thread = rig.machine.CreateThread("t");
    thread->SetSegmentDoneCallback([&]() { ++completions; });
    rig.machine.AddWork(thread, 10'000);
    threads.push_back(thread);
  }
  for (Thread* thread : threads) {
    rig.machine.Wake(thread);
  }
  rig.sim.RunUntil(5'000);
  EXPECT_EQ(rig.machine.CurrentOn(2), nullptr);
  EXPECT_EQ(rig.machine.CurrentOn(3), nullptr);
  EXPECT_NE(rig.machine.CurrentOn(0), nullptr);
  EXPECT_NE(rig.machine.CurrentOn(1), nullptr);
  rig.sim.RunToCompletion();
  EXPECT_EQ(completions, 4);
}

TEST(Ghost, FcfsOrdersByWakeTime) {
  FcfsGhostPolicy policy;
  GhostRig rig(1, 1, policy);
  Thread* first = rig.machine.CreateThread("first");
  Thread* second = rig.machine.CreateThread("second");
  std::vector<std::string> order;
  first->SetSegmentDoneCallback([&]() { order.push_back("first"); });
  second->SetSegmentDoneCallback([&]() { order.push_back("second"); });
  rig.machine.AddWork(first, 1000);
  rig.machine.AddWork(second, 1000);
  rig.machine.Wake(first);
  rig.sim.ScheduleAt(10, [&]() { rig.machine.Wake(second); });
  rig.sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
}

TEST(Ghost, GetPriorityPolicyJumpsQueue) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 16;
  auto types = CreateMap(spec).value();
  GetPriorityGhostPolicy policy(types);
  GhostRig rig(1, 1, policy);

  Thread* scan_thread = rig.machine.CreateThread("scan");
  Thread* get_thread = rig.machine.CreateThread("get");
  std::vector<std::string> order;
  scan_thread->SetSegmentDoneCallback([&]() { order.push_back("scan"); });
  get_thread->SetSegmentDoneCallback([&]() { order.push_back("get"); });

  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(scan_thread->tid()),
                               static_cast<uint64_t>(ReqType::kScan))
                  .ok());
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(get_thread->tid()),
                               static_cast<uint64_t>(ReqType::kGet))
                  .ok());

  // Both wake in the same agent batch, SCAN first; the GET thread still
  // runs first under strict priority.
  rig.machine.AddWork(scan_thread, 700'000);
  rig.machine.AddWork(get_thread, 10'000);
  rig.machine.Wake(scan_thread);
  rig.machine.Wake(get_thread);
  rig.sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<std::string>{"get", "scan"}));
}

TEST(Ghost, GetPreemptsRunningScan) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 16;
  auto types = CreateMap(spec).value();
  GetPriorityGhostPolicy policy(types);
  GhostRig rig(1, 1, policy);

  Thread* scan_thread = rig.machine.CreateThread("scan");
  Thread* get_thread = rig.machine.CreateThread("get");
  Time get_done = 0;
  Time scan_done = 0;
  scan_thread->SetSegmentDoneCallback([&]() { scan_done = rig.sim.Now(); });
  get_thread->SetSegmentDoneCallback([&]() { get_done = rig.sim.Now(); });
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(scan_thread->tid()),
                               static_cast<uint64_t>(ReqType::kScan))
                  .ok());
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(get_thread->tid()),
                               static_cast<uint64_t>(ReqType::kGet))
                  .ok());

  rig.machine.AddWork(scan_thread, 700 * kMicrosecond);
  rig.machine.Wake(scan_thread);
  // GET arrives mid-SCAN; the policy preempts "at will" (paper §5.3).
  rig.sim.ScheduleAt(100 * kMicrosecond, [&]() {
    rig.machine.AddWork(get_thread, 10 * kMicrosecond);
    rig.machine.Wake(get_thread);
  });
  rig.sim.RunToCompletion();
  EXPECT_GE(rig.sched.preemptions(), 1u);
  EXPECT_LT(get_done, 150 * kMicrosecond);  // didn't wait out the SCAN
  EXPECT_GT(scan_done, 700 * kMicrosecond);
  // SCAN work is conserved across preemption.
  EXPECT_EQ(scan_thread->total_cpu(), 700 * kMicrosecond);
}

TEST(Ghost, ScanDoesNotPreemptScan) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 16;
  auto types = CreateMap(spec).value();
  GetPriorityGhostPolicy policy(types);
  GhostRig rig(1, 1, policy);

  Thread* a = rig.machine.CreateThread("scan_a");
  Thread* b = rig.machine.CreateThread("scan_b");
  a->SetSegmentDoneCallback([] {});
  b->SetSegmentDoneCallback([] {});
  for (Thread* thread : {a, b}) {
    ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(thread->tid()),
                                 static_cast<uint64_t>(ReqType::kScan))
                    .ok());
  }
  rig.machine.AddWork(a, 700 * kMicrosecond);
  rig.machine.Wake(a);
  rig.sim.ScheduleAt(50 * kMicrosecond, [&]() {
    rig.machine.AddWork(b, 700 * kMicrosecond);
    rig.machine.Wake(b);
  });
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.sched.preemptions(), 0u);
}

TEST(Ghost, UnclassifiedThreadTreatedAsShort) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 16;
  auto types = CreateMap(spec).value();
  GetPriorityGhostPolicy policy(types);
  const GhostThreadInfo info{42, 0};
  // tid 42 not in the map: PickThread treats it as GET-class.
  EXPECT_EQ(policy.PickThread(0, {info}), 42);
}

TEST(Ghost, PolicyCanLeaveCoreIdle) {
  class NeverPlace : public GhostPolicy {
   public:
    int PickThread(int, const std::vector<GhostThreadInfo>&) override {
      return -1;
    }
  };
  NeverPlace policy;
  GhostRig rig(1, 1, policy);
  Thread* thread = rig.machine.CreateThread("t");
  thread->SetSegmentDoneCallback([] {});
  rig.machine.AddWork(thread, 100);
  rig.machine.Wake(thread);
  rig.sim.RunUntil(1 * kMillisecond);
  EXPECT_EQ(thread->state(), Thread::State::kRunnable);  // starved by policy
  EXPECT_EQ(rig.sched.commits(), 0u);
}

TEST(Ghost, StalePickIsIgnored) {
  class PickBogus : public GhostPolicy {
   public:
    int PickThread(int, const std::vector<GhostThreadInfo>&) override {
      return 999;  // not a runnable tid
    }
  };
  PickBogus policy;
  GhostRig rig(1, 1, policy);
  Thread* thread = rig.machine.CreateThread("t");
  thread->SetSegmentDoneCallback([] {});
  rig.machine.AddWork(thread, 100);
  rig.machine.Wake(thread);
  rig.sim.RunUntil(1 * kMillisecond);
  EXPECT_EQ(rig.sched.commits(), 0u);  // bogus pick skipped, no crash
}


TEST(Ghost, ManyThreadsManyCores) {
  // 12 threads over 3 managed cores: everything completes, total CPU time
  // is conserved, unmanaged core untouched.
  FcfsGhostPolicy policy;
  GhostRig rig(4, 3, policy);
  std::vector<Thread*> threads;
  int completions = 0;
  for (int i = 0; i < 12; ++i) {
    Thread* thread = rig.machine.CreateThread("t" + std::to_string(i));
    thread->SetSegmentDoneCallback([&]() { ++completions; });
    rig.machine.AddWork(thread, 10'000 + static_cast<Duration>(i) * 100);
    threads.push_back(thread);
  }
  for (Thread* thread : threads) {
    rig.machine.Wake(thread);
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(completions, 12);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(threads[static_cast<size_t>(i)]->total_cpu(),
              10'000u + static_cast<Duration>(i) * 100);
  }
  EXPECT_EQ(rig.machine.CoreUtilization(3), 0.0);
  EXPECT_EQ(rig.sched.commits(), 12u);
}

TEST(Ghost, RepeatedWakeBlockCycles) {
  FcfsGhostPolicy policy;
  GhostRig rig(1, 1, policy);
  Thread* thread = rig.machine.CreateThread("t");
  int completions = 0;
  thread->SetSegmentDoneCallback([&]() { ++completions; });
  // Wake it 10 times with gaps larger than the run time.
  for (int i = 0; i < 10; ++i) {
    rig.sim.ScheduleAt(static_cast<Time>(i) * 100'000, [&]() {
      rig.machine.AddWork(thread, 1000);
      rig.machine.Wake(thread);
    });
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(completions, 10);
  EXPECT_EQ(thread->total_cpu(), 10'000u);
}

TEST(Ghost, PreemptionConservesWorkAcrossManyCycles) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 16;
  auto types = CreateMap(spec).value();
  GetPriorityGhostPolicy policy(types);
  GhostRig rig(1, 1, policy);

  Thread* scan_thread = rig.machine.CreateThread("scan");
  Thread* get_thread = rig.machine.CreateThread("get");
  Time scan_done = 0;
  int gets_done = 0;
  scan_thread->SetSegmentDoneCallback([&]() { scan_done = rig.sim.Now(); });
  get_thread->SetSegmentDoneCallback([&]() { ++gets_done; });
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(scan_thread->tid()),
                               static_cast<uint64_t>(ReqType::kScan)).ok());
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(get_thread->tid()),
                               static_cast<uint64_t>(ReqType::kGet)).ok());

  rig.machine.AddWork(scan_thread, 700 * kMicrosecond);
  rig.machine.Wake(scan_thread);
  // Five GETs arrive during the SCAN; each preempts it.
  for (int i = 1; i <= 5; ++i) {
    rig.sim.ScheduleAt(static_cast<Time>(i) * 100 * kMicrosecond, [&]() {
      rig.machine.AddWork(get_thread, 10 * kMicrosecond);
      rig.machine.Wake(get_thread);
    });
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(gets_done, 5);
  EXPECT_GE(rig.sched.preemptions(), 5u);
  EXPECT_EQ(scan_thread->total_cpu(), 700 * kMicrosecond);
  EXPECT_GT(scan_done, 750 * kMicrosecond);  // delayed by the GETs
}

TEST(Ghost, MessageCountsAreSane) {
  FcfsGhostPolicy policy;
  GhostRig rig(1, 1, policy);
  Thread* thread = rig.machine.CreateThread("t");
  thread->SetSegmentDoneCallback([] {});
  rig.machine.AddWork(thread, 100);
  rig.machine.Wake(thread);
  rig.sim.RunToCompletion();
  // At least: wakeup, blocked, cpu-available.
  EXPECT_GE(rig.sched.messages_processed(), 3u);
}

}  // namespace
}  // namespace syrup
