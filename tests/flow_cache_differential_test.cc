// Differential test: the flow-decision cache must be invisible in results.
// Every experiment pipeline run with the cache on must reproduce the
// cache-off run bit-for-bit — cacheable policies are pure functions of
// (flow key, read-set map versions), so memoizing them may change only
// *when* a policy executes, never what the packet's decision is.
// `stats_json` is deliberately excluded: flow_cache.{hits,misses} and
// policy.invocations legitimately differ between the two runs.
#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

RocksDbExperimentConfig SmallRocksDbConfig() {
  RocksDbExperimentConfig config;
  config.socket_policy = SocketPolicyKind::kScanAvoid;
  config.load_rps = 60'000;
  config.get_fraction = 0.995;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  return config;
}

void ExpectBitIdentical(const RocksDbResult& on, const RocksDbResult& off) {
  EXPECT_EQ(on.throughput_rps, off.throughput_rps);
  EXPECT_EQ(on.p50_us, off.p50_us);
  EXPECT_EQ(on.p99_us, off.p99_us);
  EXPECT_EQ(on.p99_get_us, off.p99_get_us);
  EXPECT_EQ(on.p99_scan_us, off.p99_scan_us);
  EXPECT_EQ(on.drop_fraction, off.drop_fraction);
  EXPECT_EQ(on.get_throughput_rps, off.get_throughput_rps);
  EXPECT_EQ(on.scan_throughput_rps, off.scan_throughput_rps);
}

void ExpectBitIdentical(const MicaResult& on, const MicaResult& off) {
  EXPECT_EQ(on.throughput_rps, off.throughput_rps);
  EXPECT_EQ(on.p50_us, off.p50_us);
  EXPECT_EQ(on.p999_us, off.p999_us);
  EXPECT_EQ(on.drop_fraction, off.drop_fraction);
  EXPECT_EQ(on.redirected, off.redirected);
}

// Fig. 2 pipeline. scan_avoid is *uncacheable* (random probing), so this
// asserts the transparent-fallback half of the contract: an uncacheable
// deployment behaves as if the cache did not exist.
TEST(FlowCacheDifferential, Fig2RocksDbBitExact) {
  RocksDbExperimentConfig config = SmallRocksDbConfig();
  config.use_bytecode = true;
  config.flow_cache = true;
  const RocksDbResult on = RunRocksDbExperiment(config);
  config.flow_cache = false;
  const RocksDbResult off = RunRocksDbExperiment(config);
  ExpectBitIdentical(on, off);
}

// Fig. 8 pipeline: packet hooks plus the ghOSt thread scheduler. Thread
// policies are never cacheable (no packet to key on); the packet side
// runs round robin, also uncacheable. The cache must stay out of the way
// of the cross-layer pipeline entirely.
TEST(FlowCacheDifferential, Fig8ThreadSchedBitExact) {
  RocksDbExperimentConfig config = SmallRocksDbConfig();
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  config.thread_sched = ThreadSchedKind::kGhostGetPriority;
  config.num_threads = 4;
  config.num_cores = 2;
  config.flow_cache = true;
  const RocksDbResult on = RunRocksDbExperiment(config);
  config.flow_cache = false;
  const RocksDbResult off = RunRocksDbExperiment(config);
  ExpectBitIdentical(on, off);
}

// Fig. 9 pipeline with the bytecode MICA home policy — this one is
// cacheable (pure key-hash steering), so the cache-on run genuinely
// serves most packets from the cache while the cache-off run executes
// the policy every time. Decisions, and therefore every result number,
// must still be bit-identical.
TEST(FlowCacheDifferential, Fig9MicaCacheableBytecodeBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSwRedirect;
  config.use_bytecode = true;
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  config.flow_cache = true;
  const MicaResult on = RunMicaExperiment(config);
  config.flow_cache = false;
  const MicaResult off = RunMicaExperiment(config);
  ExpectBitIdentical(on, off);
}

// Same, through the AF_XDP delivery variant (different hook wiring).
TEST(FlowCacheDifferential, Fig9MicaSyrupSwBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSyrupSw;
  config.use_bytecode = true;
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  config.flow_cache = true;
  const MicaResult on = RunMicaExperiment(config);
  config.flow_cache = false;
  const MicaResult off = RunMicaExperiment(config);
  ExpectBitIdentical(on, off);
}

// Config variants must be equally invisible: a deliberately undersized
// table (64 slots for thousands of flows) with admission and adaptive
// sizing churning — constant evictions, rejections, and resizes — may only
// change hit rates, never a decision. This is the scale knobs' version of
// the transparency contract.
TEST(FlowCacheDifferential, Fig9MicaTinyAdaptiveAdmissionBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSwRedirect;
  config.use_bytecode = true;
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  config.flow_cache_config.capacity = 64;
  config.flow_cache_config.admission = true;
  config.flow_cache_config.adaptive = true;
  config.flow_cache = true;
  const MicaResult churn = RunMicaExperiment(config);
  config.flow_cache = false;
  const MicaResult off = RunMicaExperiment(config);
  ExpectBitIdentical(churn, off);
}

// Admission alone on a fixed tiny table (rejects dominate: most flows are
// turned away and keep executing the policy) — still bit-identical.
TEST(FlowCacheDifferential, Fig2RocksDbTinyFixedAdmissionBitExact) {
  RocksDbExperimentConfig config = SmallRocksDbConfig();
  config.use_bytecode = true;
  config.flow_cache_config.capacity = 16;
  config.flow_cache_config.admission = true;
  config.flow_cache_config.adaptive = false;
  config.flow_cache = true;
  const RocksDbResult churn = RunRocksDbExperiment(config);
  config.flow_cache = false;
  const RocksDbResult off = RunRocksDbExperiment(config);
  ExpectBitIdentical(churn, off);
}

}  // namespace
}  // namespace syrup
