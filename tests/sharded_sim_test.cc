// Sharded-simulation tests: the SPSC channel and barrier primitives, the
// conservative-window protocol's delivery/ordering guarantees, and the
// multi-thread counter discipline (registry shard cells, Syrupd's
// shard-qualified dispatch). The determinism tests run the same workload
// twice and require bit-identical traces — the contract is exact equality,
// never tolerance. This suite also runs under TSan in CI, so every
// cross-thread access here must be genuinely race-free, not just lucky.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/net/stack.h"
#include "src/obs/metrics.h"
#include "src/policies/builtin.h"
#include "src/sim/sharded.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// --- Primitives -------------------------------------------------------------

TEST(ShardChannel, FifoFullAndRetryAfterPop) {
  ShardChannel ch(4);
  auto push = [&ch](Time when) {
    ShardMessage msg{when, 0, ch.next_seq(), [] {}};
    return ch.TryPush(std::move(msg));
  };
  for (Time t = 0; t < 4; ++t) {
    EXPECT_TRUE(push(t));
  }
  // A failed push must leave the message intact so Post() can retry it.
  ShardMessage overflow{Time{99}, 0, ch.next_seq(), [] {}};
  EXPECT_FALSE(ch.TryPush(std::move(overflow)));
  EXPECT_EQ(overflow.when, Time{99});
  EXPECT_TRUE(overflow.fn != nullptr);

  ShardMessage out;
  ASSERT_TRUE(ch.TryPop(out));
  EXPECT_EQ(out.when, Time{0});
  EXPECT_TRUE(ch.TryPush(std::move(overflow)));
  for (Time expect : {Time{1}, Time{2}, Time{3}, Time{99}}) {
    ASSERT_TRUE(ch.TryPop(out));
    EXPECT_EQ(out.when, expect);
  }
  EXPECT_FALSE(ch.TryPop(out));
}

TEST(SpinBarrier, ReleasesAllPartiesEveryRound) {
  constexpr int kParties = 4;
  constexpr int kRounds = 200;
  SpinBarrier barrier(kParties);
  std::atomic<uint64_t> arrived{0};
  std::vector<std::thread> threads;
  threads.reserve(kParties);
  for (int p = 0; p < kParties; ++p) {
    threads.emplace_back([&arrived, &barrier] {
      for (int r = 0; r < kRounds; ++r) {
        arrived.fetch_add(1, std::memory_order_acq_rel);
        barrier.ArriveAndWait([] {});
        // Past the barrier, every party's arrival for round r is visible.
        EXPECT_GE(arrived.load(std::memory_order_acquire),
                  uint64_t{static_cast<unsigned>(r + 1)} * kParties);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(arrived.load(), uint64_t{kParties} * kRounds);
}

// --- ShardedSim protocol ----------------------------------------------------

TEST(ShardedSim, SingleShardRunsInline) {
  ShardedSimConfig config;
  config.shards = 1;
  ShardedSim sharded(config);
  Simulator& sim = sharded.shard(0);
  std::vector<int> order;
  sim.ScheduleAt(500, [&order] { order.push_back(3); });
  sim.ScheduleAt(100, [&order] { order.push_back(1); });
  sim.ScheduleAt(150, [&order] { order.push_back(2); });
  EXPECT_EQ(sharded.RunUntil(1000), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // Like Simulator::RunUntil, an idle shard's clock advances to the horizon.
  EXPECT_EQ(sim.Now(), Time{1000});
  EXPECT_EQ(sharded.stats().messages, 0u);
}

TEST(ShardedSim, CrossShardDeliveryHonorsTimestamps) {
  ShardedSimConfig config;
  config.shards = 2;
  config.lookahead = 1000;
  ShardedSim sharded(config);
  // Only shard 1's thread writes this log; the join inside RunUntil orders
  // it before the main thread's reads.
  std::vector<Time> shard1_log;
  sharded.shard(0).ScheduleAt(10, [&sharded, &shard1_log] {
    const Time when = sharded.shard(0).Now() + sharded.lookahead();
    sharded.Post(0, 1, when, [&sharded, &shard1_log] {
      shard1_log.push_back(sharded.shard(1).Now());
    });
  });
  sharded.RunUntil(5000);
  ASSERT_EQ(shard1_log.size(), 1u);
  EXPECT_EQ(shard1_log[0], Time{1010});
  EXPECT_EQ(sharded.stats().messages, 1u);
  EXPECT_EQ(sharded.shard(0).Now(), Time{5000});
  EXPECT_EQ(sharded.shard(1).Now(), Time{5000});
}

// One entry of a shard's deterministic trace: (simulated time, tag).
using TraceEntry = std::pair<Time, uint64_t>;

struct PingPongState {
  explicit PingPongState(int shards) : traces(shards) {}
  std::vector<std::vector<TraceEntry>> traces;  // traces[s]: shard s only
};

uint64_t Lcg(uint64_t x) {
  return x * 6364136223846793005ull + 1442695040888963407ull;
}

// A self-continuing chain hopping shard -> (shard+1) % N. Each step logs,
// then posts one continuation plus 0-2 "leaf" messages (log only) with
// LCG-jittered delivery times, so channels see bursts and the tiny-capacity
// config exercises the full-channel Post path.
void PingPongStep(ShardedSim& sharded, PingPongState& state, int s,
                  uint64_t step, uint64_t limit) {
  Simulator& sim = sharded.shard(s);
  state.traces[static_cast<size_t>(s)].push_back({sim.Now(), step});
  if (step >= limit) {
    return;
  }
  const int dst = (s + 1) % sharded.shards();
  uint64_t x = Lcg(step ^ (static_cast<uint64_t>(s) << 32));
  const Time base = sim.Now() + sharded.lookahead();
  const int leaves = static_cast<int>((x >> 33) % 3);  // 0..2 extras
  for (int m = 0; m < leaves; ++m) {
    x = Lcg(x);
    const Time when = base + (x >> 40) % 57;
    sharded.Post(s, dst, when, [&sharded, &state, dst, step, when] {
      state.traces[static_cast<size_t>(dst)].push_back(
          {sharded.shard(dst).Now(), 1'000'000 + step});
      EXPECT_EQ(sharded.shard(dst).Now(), when);
    });
  }
  x = Lcg(x);
  const Time when = base + (x >> 40) % 57;
  sharded.Post(s, dst, when, [&sharded, &state, dst, step, limit] {
    PingPongStep(sharded, state, dst, step + 1, limit);
  });
}

PingPongState RunPingPong(int shards, size_t channel_capacity) {
  ShardedSimConfig config;
  config.shards = shards;
  config.lookahead = 100;
  config.channel_capacity = channel_capacity;
  ShardedSim sharded(config);
  PingPongState state(shards);
  for (int s = 0; s < shards; ++s) {
    sharded.shard(s).ScheduleAt(static_cast<Time>(s + 1),
                                [&sharded, &state, s] {
                                  PingPongStep(sharded, state, s, 0, 200);
                                });
  }
  sharded.RunToCompletion();
  return state;
}

TEST(ShardedSim, PingPongIsBitDeterministicAcrossRuns) {
  // Capacity 2 forces Post() through its full-channel drain-and-retry path;
  // determinism must hold anyway because (when, src, seq) ordering erases
  // physical timing.
  const PingPongState first = RunPingPong(4, /*channel_capacity=*/2);
  const PingPongState second = RunPingPong(4, /*channel_capacity=*/2);
  ASSERT_EQ(first.traces.size(), second.traces.size());
  for (size_t s = 0; s < first.traces.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_FALSE(first.traces[s].empty());
    EXPECT_EQ(first.traces[s], second.traces[s]);
  }
}

TEST(ShardedSim, PingPongChannelCapacityDoesNotChangeResults) {
  // The channel is pure transport: its capacity (hence how often Post
  // blocks) must not be observable in simulated results.
  const PingPongState tiny = RunPingPong(3, /*channel_capacity=*/2);
  const PingPongState large = RunPingPong(3, /*channel_capacity=*/4096);
  for (size_t s = 0; s < tiny.traces.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(tiny.traces[s], large.traces[s]);
  }
}

// --- Registry shard cells ---------------------------------------------------

TEST(MetricsSharding, ConcurrentShardBumpsFoldIntoOneEntry) {
  obs::MetricsRegistry registry;
  registry.GetCounter("app", "hook", "events")->Inc();  // base cell: 1
  constexpr int kShards = 4;
  constexpr uint64_t kPerShard = 200'000;
  std::vector<std::shared_ptr<obs::Counter>> cells;
  cells.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    cells.push_back(registry.GetCounterShard("app", "hook", "events", s));
  }
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([cell = cells[static_cast<size_t>(s)]] {
      for (uint64_t i = 0; i < kPerShard; ++i) {
        cell->IncRelaxed();
      }
    });
  }
  // Snapshots taken mid-run must be race-free and monotone.
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t now =
        registry.TakeSnapshot().CounterValue("app", "hook", "events");
    EXPECT_GE(now, prev);
    prev = now;
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.TakeSnapshot().CounterValue("app", "hook", "events"),
            1 + kShards * kPerShard);
}

// --- Syrupd shard-qualified dispatch ----------------------------------------

Packet MakePacket(uint16_t dst_port, uint32_t key_hash) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a0000ff;
  pkt.tuple.src_port = 20'000;
  pkt.tuple.dst_port = dst_port;
  pkt.SetHeader(ReqType::kGet, 1, key_hash, 1, 0);
  return pkt;
}

// Concurrent shard dispatch of a verifier-proven cacheable policy: all
// lanes are warmed single-threaded first, so the concurrent phase is
// hits-only (the policy VM itself never runs concurrently — that is the
// documented contract for sharing one Syrupd across shard threads).
TEST(SyrupdSharding, ConcurrentWarmDispatchIsRaceFreeAndFolds) {
  constexpr int kShards = 4;
  constexpr size_t kFlows = 32;
  constexpr int kIters = 2'000;
  constexpr Hook kHook = Hook::kXdpSkb;

  Simulator sim;
  HostStack stack(sim, StackConfig{});
  Syrupd syrupd(sim, &stack);
  FlowCacheConfig cache_config;
  cache_config.adaptive = false;  // no resizes evicting warm entries mid-run
  syrupd.set_flow_cache_config(cache_config);
  const AppId app = syrupd.RegisterApp("mica", 1000, 9100).value();
  ASSERT_TRUE(
      syrupd.DeployPolicyFile(app, MicaHomePolicyAsm(6), kHook).ok());
  syrupd.ConfigureSharding(kShards);
  ASSERT_EQ(syrupd.dispatch_shards(), kShards);

  std::vector<Packet> packets;
  packets.reserve(kFlows);
  for (size_t i = 0; i < kFlows; ++i) {
    packets.push_back(
        MakePacket(9100, static_cast<uint32_t>(i + 1) * 2654435761u));
  }
  std::vector<PacketView> views;
  views.reserve(packets.size());
  for (const Packet& pkt : packets) {
    views.push_back(PacketView::Of(pkt));
  }

  // Warm every lane's cache single-threaded; every shard must reach the
  // same decisions (the cached policy is pure).
  std::vector<Decision> expected(kFlows, 0);
  syrupd.DispatchBatch(kHook, views, std::span<Decision>(expected), 0);
  for (int s = 1; s < kShards; ++s) {
    std::vector<Decision> warm(kFlows, 0);
    syrupd.DispatchBatch(kHook, views, std::span<Decision>(warm), s);
    EXPECT_EQ(warm, expected) << "shard " << s;
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([&syrupd, &views, &expected, &mismatches, s] {
      std::vector<Decision> out(views.size(), 0);
      for (int iter = 0; iter < kIters; ++iter) {
        syrupd.DispatchBatch(kHook, views, std::span<Decision>(out), s);
        if (out != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Concurrent snapshots: the dispatched count must fold all lanes and
  // stay monotone while they bump.
  uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const uint64_t now = syrupd.StatsSnapshot().CounterValue(
        "syrupd", HookName(kHook), "dispatched");
    EXPECT_GE(now, prev);
    prev = now;
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  const obs::Snapshot snap = syrupd.StatsSnapshot();
  const uint64_t dispatched =
      snap.CounterValue("syrupd", HookName(kHook), "dispatched");
  const uint64_t hits =
      snap.CounterValue("syrupd", HookName(kHook), "flow_cache.hits");
  const uint64_t misses =
      snap.CounterValue("syrupd", HookName(kHook), "flow_cache.misses");
  EXPECT_EQ(dispatched, kFlows * kShards * (kIters + 1));
  EXPECT_EQ(hits + misses, dispatched);
  // Exactly one cold pass per lane; everything after warms from its own
  // shard-local table.
  EXPECT_EQ(misses, uint64_t{kFlows} * kShards);
  EXPECT_EQ(snap.CounterValue("mica", HookName(kHook), "dispatched"),
            dispatched);
}

}  // namespace
}  // namespace syrup
