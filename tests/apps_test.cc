#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>

#include "src/apps/loadgen.h"
#include "src/apps/mica_server.h"
#include "src/apps/rocksdb_server.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// --- LoadGenerator -----------------------------------------------------------------

class LoadGenTest : public testing::Test {
 protected:
  LoadGenTest() : stack_(sim_, Config()) {
    stack_.GetOrCreateGroup(9000)->AddSocket(100'000);
  }

  static StackConfig Config() {
    StackConfig config;
    config.num_nic_queues = 2;
    return config;
  }

  Simulator sim_;
  HostStack stack_;
};

TEST_F(LoadGenTest, GeneratesApproximatelyConfiguredRate) {
  LoadGenConfig config;
  config.rate_rps = 100'000;
  config.dst_port = 9000;
  LoadGenerator gen(sim_, stack_, config);
  gen.Start(1 * kSecond);
  sim_.RunUntil(1 * kSecond);
  EXPECT_NEAR(static_cast<double>(gen.sent()), 100'000, 2'000);
}

TEST_F(LoadGenTest, StopsAtDeadline) {
  LoadGenConfig config;
  config.rate_rps = 10'000;
  config.dst_port = 9000;
  LoadGenerator gen(sim_, stack_, config);
  gen.Start(100 * kMillisecond);
  sim_.RunUntil(1 * kSecond);
  const uint64_t at_deadline = gen.sent();
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(gen.sent(), at_deadline);
}

TEST_F(LoadGenTest, MixFractionsRespected) {
  LoadGenConfig config;
  config.rate_rps = 100'000;
  config.dst_port = 9000;
  config.mix = {{ReqType::kGet, 0.995}, {ReqType::kScan, 0.005}};
  LoadGenerator gen(sim_, stack_, config);

  uint64_t scans = 0;
  uint64_t total = 0;
  Socket* sock = stack_.GetOrCreateGroup(9000)->at(0);
  sock->SetWakeCallback([&]() {
    auto pkt = sock->Dequeue();
    ++total;
    if (pkt->req_type() == ReqType::kScan) {
      ++scans;
    }
  });
  gen.Start(1 * kSecond);
  sim_.RunToCompletion();
  ASSERT_GT(total, 50'000u);
  EXPECT_NEAR(static_cast<double>(scans) / static_cast<double>(total), 0.005,
              0.002);
}

TEST_F(LoadGenTest, UsesConfiguredFlowCount) {
  LoadGenConfig config;
  config.rate_rps = 50'000;
  config.dst_port = 9000;
  config.num_flows = 5;
  LoadGenerator gen(sim_, stack_, config);
  std::set<uint16_t> src_ports;
  Socket* sock = stack_.GetOrCreateGroup(9000)->at(0);
  sock->SetWakeCallback([&]() {
    auto pkt = sock->Dequeue();
    src_ports.insert(pkt->tuple.src_port);
  });
  gen.Start(100 * kMillisecond);
  sim_.RunToCompletion();
  EXPECT_EQ(src_ports.size(), 5u);
}

TEST_F(LoadGenTest, DeterministicAcrossRuns) {
  LoadGenConfig config;
  config.rate_rps = 10'000;
  config.dst_port = 9000;
  config.seed = 999;
  uint64_t counts[2];
  for (int run = 0; run < 2; ++run) {
    Simulator sim;
    HostStack stack(sim, Config());
    stack.GetOrCreateGroup(9000)->AddSocket(100'000);
    LoadGenerator gen(sim, stack, config);
    gen.Start(100 * kMillisecond);
    sim.RunToCompletion();
    counts[run] = gen.sent();
  }
  EXPECT_EQ(counts[0], counts[1]);
}

// --- RocksDbServer -----------------------------------------------------------------

struct RocksRig {
  explicit RocksRig(RocksDbConfig config = {})
      : stack(sim, StackCfg()),
        machine(sim, config.num_threads),
        sched(machine) {
    machine.SetScheduler(&sched);
    server = std::make_unique<RocksDbServer>(sim, stack, machine, config);
  }

  static StackConfig StackCfg() {
    StackConfig config;
    config.num_nic_queues = 6;
    return config;
  }

  Packet MakePacket(ReqType type, uint16_t src_port = 20'000,
                    uint32_t user = 1) {
    Packet pkt;
    pkt.tuple.src_port = src_port;
    pkt.tuple.dst_port = 9000;
    pkt.SetHeader(type, user, 0, ++req_id, sim.Now());
    return pkt;
  }

  Simulator sim;
  HostStack stack;
  Machine machine;
  PinnedScheduler sched;
  std::unique_ptr<RocksDbServer> server;
  uint64_t req_id = 0;
};

TEST(RocksDbServer, ServesRequestAndRecordsLatency) {
  RocksRig rig;
  rig.stack.Rx(rig.MakePacket(ReqType::kGet));
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.server->completed(), 1u);
  EXPECT_EQ(rig.server->completed(ReqType::kGet), 1u);
  const uint64_t latency = rig.server->latency(ReqType::kGet).max();
  // At least the service time (10-12us) + stack costs + wire delay.
  EXPECT_GT(latency, 10 * kMicrosecond);
  EXPECT_LT(latency, 100 * kMicrosecond);
}

TEST(RocksDbServer, ScanLatencyReflectsServiceTime) {
  RocksRig rig;
  rig.stack.Rx(rig.MakePacket(ReqType::kScan));
  rig.sim.RunToCompletion();
  EXPECT_GT(rig.server->latency(ReqType::kScan).max(), 690 * kMicrosecond);
}

TEST(RocksDbServer, QueuedRequestsServeFifo) {
  RocksRig rig;
  // All to the same flow -> same socket via default hash.
  for (int i = 0; i < 5; ++i) {
    rig.stack.Rx(rig.MakePacket(ReqType::kGet));
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.server->completed(), 5u);
  // Head waited ~1 service, tail ~5 services: p~100 > min.
  EXPECT_GT(rig.server->overall_latency().max(),
            rig.server->overall_latency().min());
}

TEST(RocksDbServer, ScanMapTracksSocketState) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = 6;
  auto scan_map = CreateMap(spec).value();
  RocksDbConfig config;
  config.scan_map = scan_map;
  RocksRig rig(config);

  // Initially all sockets report GET (schedulable).
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(scan_map->LookupU64(i).value(),
              static_cast<uint64_t>(ReqType::kGet));
  }
  Packet pkt = rig.MakePacket(ReqType::kScan);
  const uint32_t target =
      static_cast<uint32_t>(pkt.tuple.Hash() % 6);  // default steering
  rig.stack.Rx(pkt);
  // Mid-scan: the socket is marked SCAN (Fig. 5b's userspace update).
  rig.sim.RunUntil(300 * kMicrosecond);
  EXPECT_EQ(scan_map->LookupU64(target).value(),
            static_cast<uint64_t>(ReqType::kScan));
  rig.sim.RunToCompletion();
  EXPECT_EQ(scan_map->LookupU64(target).value(),
            static_cast<uint64_t>(ReqType::kGet));
}

TEST(RocksDbServer, ThreadTypeMapPublishedForGhost) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 64;
  auto type_map = CreateMap(spec).value();
  RocksDbConfig config;
  config.thread_type_map = type_map;
  RocksRig rig(config);
  Packet pkt = rig.MakePacket(ReqType::kScan);
  rig.stack.Rx(pkt);
  rig.sim.RunUntil(300 * kMicrosecond);
  // Some thread is marked as serving a SCAN.
  int scan_threads = 0;
  for (int i = 0; i < 6; ++i) {
    const uint32_t tid =
        static_cast<uint32_t>(rig.server->thread(i)->tid());
    auto value = type_map->LookupU64(tid);
    if (value.ok() &&
        *value == static_cast<uint64_t>(ReqType::kScan)) {
      ++scan_threads;
    }
  }
  EXPECT_EQ(scan_threads, 1);
}

TEST(RocksDbServer, PerUserStatsSeparate) {
  RocksRig rig;
  rig.stack.Rx(rig.MakePacket(ReqType::kGet, 20'000, /*user=*/1));
  rig.stack.Rx(rig.MakePacket(ReqType::kGet, 20'001, /*user=*/2));
  rig.stack.Rx(rig.MakePacket(ReqType::kGet, 20'002, /*user=*/2));
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.server->user_completed(1), 1u);
  EXPECT_EQ(rig.server->user_completed(2), 2u);
  EXPECT_EQ(rig.server->user_completed(3), 0u);
}

TEST(RocksDbServer, ResetStatsClearsEverything) {
  RocksRig rig;
  rig.stack.Rx(rig.MakePacket(ReqType::kGet));
  rig.sim.RunToCompletion();
  ASSERT_EQ(rig.server->completed(), 1u);
  rig.server->ResetStats();
  EXPECT_EQ(rig.server->completed(), 0u);
  EXPECT_EQ(rig.server->overall_latency().count(), 0u);
  EXPECT_EQ(rig.server->user_completed(1), 0u);
}

// --- MicaServer --------------------------------------------------------------------

struct MicaRig {
  explicit MicaRig(MicaVariant variant)
      : stack(sim, StackCfg()), machine(sim, 8), sched(machine) {
    machine.SetScheduler(&sched);
    MicaConfig config;
    server = std::make_unique<MicaServer>(sim, stack, machine, config,
                                          variant);
  }

  static StackConfig StackCfg() {
    StackConfig config;
    config.num_nic_queues = 8;
    return config;
  }

  Packet MakePacket(uint32_t key_hash, ReqType type = ReqType::kGet) {
    Packet pkt;
    pkt.tuple.src_port = 20'000;
    pkt.tuple.dst_port = 9100;
    pkt.SetHeader(type, 1, key_hash, ++req_id, sim.Now());
    return pkt;
  }

  Simulator sim;
  HostStack stack;
  Machine machine;
  PinnedScheduler sched;
  std::unique_ptr<MicaServer> server;
  uint64_t req_id = 0;
};

TEST(MicaServer, SwRedirectForwardsToHomeCore) {
  MicaRig rig(MicaVariant::kSwRedirect);
  // 64 random keys: with hash distribution, most land on a non-home core
  // first and get redirected.
  for (uint32_t key = 0; key < 64; ++key) {
    rig.stack.Rx(rig.MakePacket(key * 2'654'435'761u));
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.server->completed(), 64u);
  EXPECT_GT(rig.server->redirected(), 32u);  // ~7/8 expected
}

TEST(MicaServer, SyrupSwDeliversDirectlyViaXdp) {
  MicaRig rig(MicaVariant::kSyrupSw);
  // Install the home steering policy at the XDP_SKB hook by hand.
  rig.stack.hooks().xdp_skb = [](const PacketView& pkt) -> Decision {
    uint32_t key_hash;
    std::memcpy(&key_hash, pkt.start + 20, 4);
    return key_hash % 8;
  };
  for (uint32_t key = 0; key < 64; ++key) {
    rig.stack.Rx(rig.MakePacket(key * 2'654'435'761u));
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(rig.server->completed(), 64u);
  EXPECT_EQ(rig.server->redirected(), 0u);  // no app-layer forwarding
  EXPECT_EQ(rig.stack.stats().delivered_afxdp, 64u);
}

TEST(MicaServer, SyrupHwHasLowerLatencyThanSwRedirect) {
  auto run = [](MicaVariant variant, bool hw_hooks) {
    MicaRig rig(variant);
    if (hw_hooks) {
      rig.stack.hooks().xdp_offload = [](const PacketView& pkt) -> Decision {
        uint32_t key_hash;
        std::memcpy(&key_hash, pkt.start + 20, 4);
        return key_hash % 8;
      };
      rig.stack.hooks().xdp_skb = [](const PacketView&) -> Decision {
        return 0;
      };
    }
    for (uint32_t key = 0; key < 32; ++key) {
      rig.stack.Rx(rig.MakePacket(key * 2'654'435'761u));
      rig.sim.RunToCompletion();  // one at a time: pure path latency
    }
    return rig.server->latency().Mean();
  };
  const double sw_redirect = run(MicaVariant::kSwRedirect, false);
  const double hw = run(MicaVariant::kSyrupHw, true);
  EXPECT_LT(hw, sw_redirect);
}

TEST(MicaServer, PutsCostMoreThanGets) {
  MicaRig rig(MicaVariant::kSyrupHw);
  rig.stack.hooks().xdp_offload = [](const PacketView& pkt) -> Decision {
    uint32_t key_hash;
    std::memcpy(&key_hash, pkt.start + 20, 4);
    return key_hash % 8;
  };
  rig.stack.hooks().xdp_skb = [](const PacketView&) -> Decision { return 0; };
  rig.stack.Rx(rig.MakePacket(1, ReqType::kGet));
  rig.sim.RunToCompletion();
  const double get_latency = rig.server->latency().Mean();
  rig.server->ResetStats();
  rig.stack.Rx(rig.MakePacket(1, ReqType::kPut));
  rig.sim.RunToCompletion();
  EXPECT_GT(rig.server->latency().Mean(), get_latency);
}

}  // namespace
}  // namespace syrup
