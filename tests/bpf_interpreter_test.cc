#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "src/bpf/assembler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/verifier.h"
#include "src/map/map.h"
#include "src/map/prog_array.h"

namespace syrup::bpf {
namespace {

Program Load(std::string_view source) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  Program prog;
  prog.name = assembled->name;
  prog.insns = assembled->insns;
  for (const MapSlot& slot : assembled->map_slots) {
    EXPECT_FALSE(slot.is_extern);
    prog.maps.push_back(CreateMap(slot.spec).value());
  }
  return prog;
}

ExecEnv TestEnv() {
  ExecEnv env;
  env.random_u32 = []() { return 4u; };  // chosen by fair dice roll
  env.ktime_ns = []() { return 123'456u; };
  return env;
}

// Runs with a scalar context (no packet).
uint64_t RunScalar(const Program& prog, uint64_t a1 = 0, uint64_t a2 = 0) {
  Interpreter interp(TestEnv());
  auto result = interp.Run(prog, a1, a2, /*args_are_packet=*/false);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->r0;
}

uint64_t RunPacket(const Program& prog, const uint8_t* data, size_t len) {
  Interpreter interp(TestEnv());
  auto result = interp.Run(prog, reinterpret_cast<uint64_t>(data),
                           reinterpret_cast<uint64_t>(data + len),
                           /*args_are_packet=*/true);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->r0;
}

TEST(Interpreter, ArithmeticBasics) {
  EXPECT_EQ(RunScalar(Load("mov r0, 7\nadd r0, 5\nexit\n")), 12u);
  EXPECT_EQ(RunScalar(Load("mov r0, 7\nsub r0, 9\nexit\n")),
            static_cast<uint64_t>(-2));
  EXPECT_EQ(RunScalar(Load("mov r0, 6\nmul r0, 7\nexit\n")), 42u);
  EXPECT_EQ(RunScalar(Load("mov r0, 42\ndiv r0, 5\nexit\n")), 8u);
  EXPECT_EQ(RunScalar(Load("mov r0, 42\nmod r0, 5\nexit\n")), 2u);
  EXPECT_EQ(RunScalar(Load("mov r0, 12\nor r0, 3\nexit\n")), 15u);
  EXPECT_EQ(RunScalar(Load("mov r0, 12\nand r0, 10\nexit\n")), 8u);
  EXPECT_EQ(RunScalar(Load("mov r0, 1\nlsh r0, 10\nexit\n")), 1024u);
  EXPECT_EQ(RunScalar(Load("mov r0, 1024\nrsh r0, 3\nexit\n")), 128u);
}

TEST(Interpreter, DivModByZeroFollowEbpfSemantics) {
  EXPECT_EQ(RunScalar(Load("mov r0, 42\ndiv r0, 0\nexit\n")), 0u);
  EXPECT_EQ(RunScalar(Load("mov r0, 42\nmov r1, 0\nmod r0, r1\nexit\n")),
            0u);
}

TEST(Interpreter, SignedOps) {
  EXPECT_EQ(RunScalar(Load("mov r0, -16\narsh r0, 2\nexit\n")),
            static_cast<uint64_t>(-4));
  EXPECT_EQ(RunScalar(Load("mov r0, 5\nneg r0\nexit\n")),
            static_cast<uint64_t>(-5));
}

TEST(Interpreter, Mov32Truncates) {
  EXPECT_EQ(RunScalar(Load("mov r1, -1\nmov32 r0, r1\nexit\n")),
            0xFFFFFFFFu);
}

TEST(Interpreter, ByteSwaps) {
  EXPECT_EQ(RunScalar(Load("mov r0, 0x1234\nbe16 r0\nexit\n")), 0x3412u);
  EXPECT_EQ(RunScalar(Load("mov r0, 0x12345678\nbe32 r0\nexit\n")),
            0x78563412u);
}

TEST(Interpreter, ConditionalJumps) {
  // |a - b| via jge.
  const char* source = R"(
    jge r1, r2, ge
    mov r0, r2
    sub r0, r1
    exit
  ge:
    mov r0, r1
    sub r0, r2
    exit
  )";
  Program prog = Load(source);
  EXPECT_EQ(RunScalar(prog, 10, 3), 7u);
  EXPECT_EQ(RunScalar(prog, 3, 10), 7u);
}

TEST(Interpreter, SignedJumps) {
  const char* source = R"(
    jsgt r1, r2, bigger
    mov r0, 0
    exit
  bigger:
    mov r0, 1
    exit
  )";
  Program prog = Load(source);
  EXPECT_EQ(RunScalar(prog, static_cast<uint64_t>(-1), 1), 0u);  // -1 < 1
  EXPECT_EQ(RunScalar(prog, 5, static_cast<uint64_t>(-3)), 1u);
}

TEST(Interpreter, StackLoadStore) {
  EXPECT_EQ(RunScalar(Load(R"(
    mov r1, 0xABCD
    stxdw [r10-8], r1
    ldxdw r0, [r10-8]
    exit
  )")), 0xABCDu);
  // Narrow store/load roundtrip.
  EXPECT_EQ(RunScalar(Load(R"(
    stb [r10-1], 0x7F
    ldxb r0, [r10-1]
    exit
  )")), 0x7Fu);
}

TEST(Interpreter, LoopComputesSum) {
  // sum 1..10 = 55
  EXPECT_EQ(RunScalar(Load(R"(
    mov r0, 0
    mov r1, 1
  loop:
    jgt r1, 10, done
    add r0, r1
    add r1, 1
    ja loop
  done:
    exit
  )")), 55u);
}

TEST(Interpreter, PacketReads) {
  std::array<uint8_t, 16> data{};
  uint32_t word = 0xDEADBEEF;
  std::memcpy(data.data() + 4, &word, 4);
  Program prog = Load(R"(
    mov r3, r1
    add r3, 8
    jgt r3, r2, out
    ldxw r0, [r1+4]
    exit
  out:
    mov r0, PASS
    exit
  )");
  EXPECT_EQ(RunPacket(prog, data.data(), data.size()), 0xDEADBEEFu);
  // A 6-byte packet fails the 8-byte bounds check and PASSes.
  EXPECT_EQ(RunPacket(prog, data.data(), 6), 0xFFFFFFFFu);
}

TEST(Interpreter, RuntimePacketBoundsEnforced) {
  // Defense in depth: an (unverified) out-of-bounds read faults at runtime.
  Program prog = Load("ldxw r0, [r1+100]\nexit\n");
  std::array<uint8_t, 16> data{};
  Interpreter interp(TestEnv());
  auto result = interp.Run(prog, reinterpret_cast<uint64_t>(data.data()),
                           reinterpret_cast<uint64_t>(data.data() + 16),
                           true);
  EXPECT_FALSE(result.ok());
}

TEST(Interpreter, RuntimeStackBoundsEnforced) {
  Program prog = Load("mov r1, 1\nstxdw [r10+8], r1\nmov r0, 0\nexit\n");
  Interpreter interp(TestEnv());
  EXPECT_FALSE(interp.Run(prog, 0, 0, false).ok());
}

TEST(Interpreter, MapLookupUpdateRoundtrip) {
  Program prog = Load(R"(
    .map m array 4 8 4
    mov r6, 2
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jne r0, 0, have
    mov r0, 0
    exit
  have:
    ldxdw r6, [r0+0]
    add r6, 1
    stxdw [r0+0], r6
    mov r0, r6
    exit
  )");
  ASSERT_TRUE(Verify(prog, ProgramContext::kPacket).ok());
  EXPECT_EQ(RunScalar(prog), 1u);
  EXPECT_EQ(RunScalar(prog), 2u);  // state persists in the map
  EXPECT_EQ(prog.maps[0]->LookupU64(2).value(), 2u);
}

TEST(Interpreter, MapUpdateHelper) {
  Program prog = Load(R"(
    .map m hash 4 8 4
    mov r6, 7
    stxw [r10-4], r6
    mov r7, 99
    stxdw [r10-16], r7
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    mov r3, r10
    add r3, -16
    call map_update_elem
    exit
  )");
  EXPECT_EQ(RunScalar(prog), 0u);
  EXPECT_EQ(prog.maps[0]->LookupU64(7).value(), 99u);
}

TEST(Interpreter, MapDeleteHelper) {
  Program prog = Load(R"(
    .map m hash 4 8 4
    mov r6, 7
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_delete_elem
    exit
  )");
  ASSERT_TRUE(prog.maps[0]->UpdateU64(7, 1).ok());
  EXPECT_EQ(RunScalar(prog), 0u);
  EXPECT_FALSE(prog.maps[0]->LookupU64(7).ok());
  // Deleting again reports failure in r0.
  EXPECT_EQ(RunScalar(prog), static_cast<uint64_t>(-1));
}

TEST(Interpreter, AtomicAddOnMapValue) {
  Program prog = Load(R"(
    .map m array 4 8 1
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, out
    mov r6, -1
    xadddw [r0+0], r6
  out:
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(prog.maps[0]->UpdateU64(0, 10).ok());
  RunScalar(prog);
  EXPECT_EQ(prog.maps[0]->LookupU64(0).value(), 9u);
}

TEST(Interpreter, HelpersRandomAndTime) {
  EXPECT_EQ(RunScalar(Load("call get_prandom_u32\nexit\n")), 4u);
  EXPECT_EQ(RunScalar(Load("call ktime_get_ns\nexit\n")), 123'456u);
}

TEST(Interpreter, HelperClobbersArgRegistersPreservesCallee) {
  EXPECT_EQ(RunScalar(Load(R"(
    mov r6, 55
    mov r1, 99
    call get_prandom_u32
    mov r0, r6        ; r6 survives the call
    exit
  )")), 55u);
  EXPECT_EQ(RunScalar(Load(R"(
    mov r3, 77
    call get_prandom_u32
    mov r0, r3        ; r3 was clobbered to 0
    exit
  )")), 0u);
}

TEST(Interpreter, CountsInstructions) {
  Program prog = Load("mov r0, 1\nadd r0, 1\nexit\n");
  Interpreter interp(TestEnv());
  auto result = interp.Run(prog, 0, 0, false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns_executed, 3u);
}

TEST(Interpreter, RunawayProgramKilled) {
  Program prog = Load("mov r0, 0\nloop:\nadd r0, 1\nja loop\n");
  Interpreter interp(TestEnv());
  auto result = interp.Run(prog, 0, 0, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Interpreter, TailCallTransfersExecution) {
  // Target program: returns 77.
  auto target = std::make_shared<Program>(Load("mov r0, 77\nexit\n"));

  Program root = Load(R"(
    .map progs prog_array 4 8 4
    mov r1, 0
    ldmapfd r2, progs
    mov r3, 2
    call tail_call
    mov r0, 11    ; only reached when the slot is empty
    exit
  )");
  auto* prog_array = static_cast<ProgArrayMap*>(root.maps[0].get());

  ExecEnv env = TestEnv();
  env.resolve_program = [&](uint64_t id) -> const Program* {
    return id == 500 ? target.get() : nullptr;
  };
  Interpreter interp(env);

  // Empty slot: falls through.
  auto miss = interp.Run(root, 0, 0, false);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->r0, 11u);
  EXPECT_EQ(miss->tail_calls, 0u);

  // Installed slot: control transfers and never comes back.
  uint32_t key = 2;
  uint64_t prog_id = 500;
  ASSERT_TRUE(prog_array->Update(&key, &prog_id, UpdateFlag::kAny).ok());
  auto hit = interp.Run(root, 0, 0, false);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->r0, 77u);
  EXPECT_EQ(hit->tail_calls, 1u);
}

TEST(Interpreter, TailCallChainBounded) {
  // A program that tail-calls itself forever is cut off at kMaxTailCalls.
  Program self = Load(R"(
    .map progs prog_array 4 8 1
    mov r1, 0
    ldmapfd r2, progs
    mov r3, 0
    call tail_call
    mov r0, 0
    exit
  )");
  auto* prog_array = static_cast<ProgArrayMap*>(self.maps[0].get());
  uint32_t key = 0;
  uint64_t prog_id = 1;
  ASSERT_TRUE(prog_array->Update(&key, &prog_id, UpdateFlag::kAny).ok());
  ExecEnv env = TestEnv();
  env.resolve_program = [&](uint64_t) { return &self; };
  Interpreter interp(env);
  auto result = interp.Run(self, 0, 0, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}


TEST(Interpreter, JsetTestsBits) {
  const char* source = R"(
    jset r1, 0x10, bit_set
    mov r0, 0
    exit
  bit_set:
    mov r0, 1
    exit
  )";
  Program prog = Load(source);
  EXPECT_EQ(RunScalar(prog, 0x30, 0), 1u);
  EXPECT_EQ(RunScalar(prog, 0x0F, 0), 0u);
}

TEST(Interpreter, RegisterFlavorsOfJumps) {
  const char* source = R"(
    jle r1, r2, le
    mov r0, 0
    exit
  le:
    mov r0, 1
    exit
  )";
  Program prog = Load(source);
  EXPECT_EQ(RunScalar(prog, 3, 3), 1u);
  EXPECT_EQ(RunScalar(prog, 4, 3), 0u);
}

TEST(Interpreter, Be64SwapsAllBytes) {
  EXPECT_EQ(RunScalar(Load("mov r0, 0x0102030405060708\nbe64 r0\nexit\n")),
            0x0807060504030201u);
}

TEST(Interpreter, HalfwordStackRoundtrip) {
  EXPECT_EQ(RunScalar(Load(R"(
    sth [r10-2], 0x1234
    ldxh r0, [r10-2]
    exit
  )")), 0x1234u);
}

TEST(Interpreter, ShiftAmountsMasked) {
  // Shift counts wrap at 64, as on x86/eBPF.
  EXPECT_EQ(RunScalar(Load("mov r0, 1\nlsh r0, 65\nexit\n")), 2u);
}

TEST(Interpreter, NegativeJumpOffsetsWork) {
  EXPECT_EQ(RunScalar(Load(R"(
    mov r0, 0
    mov r1, 3
  back:
    add r0, 10
    sub r1, 1
    jgt r1, 0, back
    exit
  )")), 30u);
}

TEST(Interpreter, ArithOnTwoRegisters) {
  const char* source = R"(
    mov r0, r1
    mul r0, r2
    mod r0, 97
    exit
  )";
  Program prog = Load(source);
  EXPECT_EQ(RunScalar(prog, 12, 13), (12u * 13u) % 97u);
}

}  // namespace
}  // namespace syrup::bpf
