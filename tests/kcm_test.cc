// KCM stream scheduling tests (§6.4 extension): request reassembly across
// arbitrary TCP segmentation, request-level policy invocation, and framing
// error handling.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/kcm.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

struct Delivered {
  uint64_t stream;
  Decision decision;
  std::vector<uint8_t> message;
};

class KcmTest : public testing::Test {
 protected:
  KcmTest()
      : mux_([this](uint64_t stream, Decision decision,
                    const std::vector<uint8_t>& message) {
          delivered_.push_back(Delivered{stream, decision, message});
        }) {}

  static std::vector<uint8_t> Message(uint8_t fill, size_t len) {
    return std::vector<uint8_t>(len, fill);
  }

  static std::vector<uint8_t> PacketMessage(ReqType type) {
    Packet pkt;
    pkt.tuple.dst_port = 9000;
    pkt.SetHeader(type, 1, 0, 1, 0);
    return std::vector<uint8_t>(pkt.wire.begin(), pkt.wire.end());
  }

  KcmMultiplexor mux_;
  std::vector<Delivered> delivered_;
};

TEST_F(KcmTest, SingleMessageInOneSegment) {
  const auto payload = Message(0xAB, 10);
  const auto frame = KcmFrame(payload.data(), payload.size());
  ASSERT_TRUE(mux_.OnSegment(1, frame.data(), frame.size()).ok());
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].message, payload);
  EXPECT_EQ(delivered_[0].decision, kPass);  // no policy installed
}

TEST_F(KcmTest, MessageSplitByteByByte) {
  const auto payload = Message(0x11, 33);
  const auto frame = KcmFrame(payload.data(), payload.size());
  for (uint8_t byte : frame) {
    ASSERT_TRUE(mux_.OnSegment(1, &byte, 1).ok());
  }
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].message, payload);
}

TEST_F(KcmTest, ManyMessagesInOneSegment) {
  std::vector<uint8_t> segment;
  for (uint8_t i = 0; i < 5; ++i) {
    const auto payload = Message(i, 4 + i);
    const auto frame = KcmFrame(payload.data(), payload.size());
    segment.insert(segment.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(mux_.OnSegment(1, segment.data(), segment.size()).ok());
  ASSERT_EQ(delivered_.size(), 5u);
  EXPECT_EQ(delivered_[3].message, Message(3, 7));
}

TEST_F(KcmTest, MessageSpanningSegmentsWithTrailingStart) {
  const auto a = Message(0xAA, 20);
  const auto b = Message(0xBB, 30);
  auto frame_a = KcmFrame(a.data(), a.size());
  const auto frame_b = KcmFrame(b.data(), b.size());
  // Segment 1: all of A plus the first 7 bytes of B.
  std::vector<uint8_t> first = frame_a;
  first.insert(first.end(), frame_b.begin(), frame_b.begin() + 7);
  ASSERT_TRUE(mux_.OnSegment(1, first.data(), first.size()).ok());
  EXPECT_EQ(delivered_.size(), 1u);
  // Segment 2: the rest of B.
  ASSERT_TRUE(mux_.OnSegment(1, frame_b.data() + 7, frame_b.size() - 7).ok());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[1].message, b);
}

TEST_F(KcmTest, StreamsAreIndependent) {
  const auto payload = Message(0xCC, 8);
  const auto frame = KcmFrame(payload.data(), payload.size());
  // Interleave partial frames of two streams.
  ASSERT_TRUE(mux_.OnSegment(1, frame.data(), 4).ok());
  ASSERT_TRUE(mux_.OnSegment(2, frame.data(), frame.size()).ok());
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].stream, 2u);
  ASSERT_TRUE(mux_.OnSegment(1, frame.data() + 4, frame.size() - 4).ok());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[1].stream, 1u);
  EXPECT_EQ(mux_.open_streams(), 2u);
  mux_.CloseStream(1);
  EXPECT_EQ(mux_.open_streams(), 1u);
}

TEST_F(KcmTest, PolicyRunsPerMessageNotPerSegment) {
  int policy_calls = 0;
  mux_.SetPolicy([&](const PacketView&) -> Decision {
    ++policy_calls;
    return 3;
  });
  const auto payload = Message(0x55, 40);
  const auto frame = KcmFrame(payload.data(), payload.size());
  // Deliver in 3 segments: the policy must still run exactly once.
  ASSERT_TRUE(mux_.OnSegment(1, frame.data(), 10).ok());
  ASSERT_TRUE(mux_.OnSegment(1, frame.data() + 10, 20).ok());
  ASSERT_TRUE(mux_.OnSegment(1, frame.data() + 30, frame.size() - 30).ok());
  EXPECT_EQ(policy_calls, 1);
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].decision, 3u);
}

TEST_F(KcmTest, SitaPolicyClassifiesReassembledRequests) {
  // The unchanged Fig. 5d policy schedules TCP-carried requests once KCM
  // has reassembled them.
  auto sita = std::make_shared<SitaPolicy>(6);
  mux_.SetPolicy([sita](const PacketView& view) {
    return sita->Schedule(view);
  });
  const auto scan = PacketMessage(ReqType::kScan);
  const auto get = PacketMessage(ReqType::kGet);
  const auto scan_frame = KcmFrame(scan.data(), scan.size());
  const auto get_frame = KcmFrame(get.data(), get.size());
  ASSERT_TRUE(mux_.OnSegment(1, scan_frame.data(), scan_frame.size()).ok());
  ASSERT_TRUE(mux_.OnSegment(1, get_frame.data(), get_frame.size()).ok());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].decision, 0u);  // SCAN -> executor 0
  EXPECT_GE(delivered_[1].decision, 1u);  // GET -> executors 1..5
}

TEST_F(KcmTest, DropDecisionSwallowsMessage) {
  mux_.SetPolicy([](const PacketView&) { return kDrop; });
  const auto payload = Message(0x66, 5);
  const auto frame = KcmFrame(payload.data(), payload.size());
  ASSERT_TRUE(mux_.OnSegment(1, frame.data(), frame.size()).ok());
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(mux_.messages_dropped(), 1u);
}

TEST_F(KcmTest, MalformedLengthPoisonsStream) {
  uint8_t bad[4] = {0, 0, 1, 2};  // length 0: invalid
  const Status status = mux_.OnSegment(1, bad, sizeof(bad));
  EXPECT_FALSE(status.ok());
  // Further data on the poisoned stream is refused...
  const auto payload = Message(0x01, 3);
  const auto frame = KcmFrame(payload.data(), payload.size());
  EXPECT_FALSE(mux_.OnSegment(1, frame.data(), frame.size()).ok());
  // ...but other streams are unaffected.
  EXPECT_TRUE(mux_.OnSegment(2, frame.data(), frame.size()).ok());
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(KcmTest, OversizeLengthRejected) {
  // Length 0xFFFF exceeds kKcmMaxMessageSize.
  uint8_t bad[2] = {0xFF, 0xFF};
  EXPECT_FALSE(mux_.OnSegment(1, bad, sizeof(bad)).ok());
}

}  // namespace
}  // namespace syrup
