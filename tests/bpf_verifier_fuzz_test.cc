// Verifier soundness fuzz: the dual of the compiler-equivalence fuzz.
//
// The property under test is the verifier's actual safety contract: every
// program it ACCEPTS must execute in the interpreter without faults — no
// out-of-bounds access, no uninitialized read, no budget blowout — for
// arbitrary runtime inputs (randomized packet bytes AND packet sizes,
// randomized thread scalars). A verifier bug that under-approximates a
// range or mis-narrows a branch surfaces here as an interpreter fault (or,
// under the CI ASan/UBSan job, as a sanitizer report on the raw packet
// buffer).
//
// Two generators:
//  * raw random instruction soup (same shape as the compiler fuzz) — broad
//    but rarely exercises the range machinery, and
//  * mutated bounds-check templates — guard size, probe offset, mask,
//    access offset, and access width all drawn at random, so the accepted
//    set straddles exactly the boundary the range analysis must get right.
//
// Every accepted program runs through all four execution tiers (interpret,
// compiled, compiled-paranoid, native) with identical inputs and helper
// streams: none may fault, and all must agree on r0. The compiled tiers run
// with assume_verified (checks elided), so an unsound acceptance surfaces
// as a raw bad access under the sanitizer jobs rather than a Status — which
// is precisely the production blast radius being tested.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/jit.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/common/rng.h"
#include "src/map/map.h"

namespace syrup::bpf {
namespace {

ExecEnv FuzzEnv(Rng* rng) {
  ExecEnv env;
  env.random_u32 = [rng]() { return static_cast<uint32_t>(rng->Next()); };
  env.ktime_ns = [rng]() { return rng->Next() & 0xffffff; };
  return env;
}

// The three compiled-family artifacts for an accepted program. The native
// artifact transparently degrades to the compiled tier when the JIT refuses
// the program (tail-call draws) or the host (non-x86-64, SYRUP_JIT_DISABLE)
// — exactly syrupd's deploy-time fallback, so the fuzz exercises it too.
struct Tiers {
  CompiledProgram plain;
  CompiledProgram paranoid;
  CompiledProgram native;
};

Tiers CompileTiers(const Program& prog, ProgramContext context) {
  CompileOptions options;
  options.assume_verified = true;  // acceptance IS the property under test
  Tiers t;
  auto plain = Compile(prog, context, options);
  EXPECT_TRUE(plain.ok()) << plain.status();
  if (plain.ok()) t.plain = *std::move(plain);
  options.paranoid = true;
  auto chk = Compile(prog, context, options);
  EXPECT_TRUE(chk.ok()) << chk.status();
  if (chk.ok()) t.paranoid = *std::move(chk);
  t.native = t.plain;
  auto jit = JitCompile(t.native);
  if (jit.ok()) t.native.native = std::move(jit).value();
  return t;
}

// Cost soundness: the verifier's wcet_insns is a WORST-case bound, so no
// concrete execution may ever retire more instructions than it predicts.
// Checked on the interpreter (counts source insns, the unit the bound is
// stated in) and both compiled tiers (execute at most the source path).
void AssertWithinWcet(const AnalysisFacts* facts, const ExecResult& result,
                      const char* tier) {
  if (facts == nullptr || !facts->cost.bounded) {
    return;
  }
  ASSERT_LE(result.insns_executed, facts->cost.wcet_insns)
      << tier << " executed more instructions than the verifier's "
      << "worst-case bound";
}

// Executes an accepted program against `runs` random packets with random
// sizes (including sizes smaller than any guard) and asserts that no
// execution tier faults and that all four agree on r0.
void AssertSoundOnPackets(const Program& prog, Rng& rng, int runs,
                          const AnalysisFacts* facts = nullptr) {
  const Tiers tiers = CompileTiers(prog, ProgramContext::kPacket);
  // One helper stream per engine, identically seeded, so bpf_random draws
  // line up across tiers and r0 comparison is meaningful.
  const uint64_t helper_seed = rng.Next();
  Rng rng_i(helper_seed), rng_c(helper_seed), rng_p(helper_seed),
      rng_n(helper_seed);
  Interpreter interp(FuzzEnv(&rng_i));
  CompiledExecutor plain(FuzzEnv(&rng_c));
  CompiledExecutor paranoid(FuzzEnv(&rng_p));
  CompiledExecutor native(FuzzEnv(&rng_n));
  for (int i = 0; i < runs; ++i) {
    std::vector<uint8_t> wire(rng.NextBounded(96));
    for (uint8_t& b : wire) {
      b = static_cast<uint8_t>(rng.Next());
    }
    const auto start = reinterpret_cast<uint64_t>(wire.data());
    const auto end = start + wire.size();
    auto want = interp.Run(prog, start, end, /*args_are_packet=*/true);
    ASSERT_TRUE(want.ok())
        << "verifier accepted a program the interpreter faults on "
        << "(pkt_size=" << wire.size() << "): " << want.status();
    auto got_plain = plain.Run(tiers.plain, start, end, true);
    ASSERT_TRUE(got_plain.ok()) << got_plain.status();
    auto got_chk = paranoid.Run(tiers.paranoid, start, end, true);
    ASSERT_TRUE(got_chk.ok()) << got_chk.status();
    auto got_native = native.Run(tiers.native, start, end, true);
    ASSERT_TRUE(got_native.ok()) << got_native.status();
    ASSERT_EQ(got_plain->r0, want->r0) << "pkt_size=" << wire.size();
    ASSERT_EQ(got_chk->r0, want->r0) << "pkt_size=" << wire.size();
    ASSERT_EQ(got_native->r0, want->r0) << "pkt_size=" << wire.size();
    AssertWithinWcet(facts, *want, "interpreter");
    AssertWithinWcet(facts, *got_plain, "compiled");
    AssertWithinWcet(facts, *got_chk, "compiled-paranoid");
  }
}

void AssertSoundOnScalars(const Program& prog, Rng& rng, int runs,
                          const AnalysisFacts* facts = nullptr) {
  const Tiers tiers = CompileTiers(prog, ProgramContext::kThread);
  const uint64_t helper_seed = rng.Next();
  Rng rng_i(helper_seed), rng_c(helper_seed), rng_p(helper_seed),
      rng_n(helper_seed);
  Interpreter interp(FuzzEnv(&rng_i));
  CompiledExecutor plain(FuzzEnv(&rng_c));
  CompiledExecutor paranoid(FuzzEnv(&rng_p));
  CompiledExecutor native(FuzzEnv(&rng_n));
  for (int i = 0; i < runs; ++i) {
    const uint64_t arg1 = rng.Next();
    const uint64_t arg2 = rng.Next();
    auto want = interp.Run(prog, arg1, arg2, /*args_are_packet=*/false);
    ASSERT_TRUE(want.ok())
        << "verifier accepted a program the interpreter faults on: "
        << want.status();
    auto got_plain = plain.Run(tiers.plain, arg1, arg2, false);
    ASSERT_TRUE(got_plain.ok()) << got_plain.status();
    auto got_chk = paranoid.Run(tiers.paranoid, arg1, arg2, false);
    ASSERT_TRUE(got_chk.ok()) << got_chk.status();
    auto got_native = native.Run(tiers.native, arg1, arg2, false);
    ASSERT_TRUE(got_native.ok()) << got_native.status();
    ASSERT_EQ(got_plain->r0, want->r0);
    ASSERT_EQ(got_chk->r0, want->r0);
    ASSERT_EQ(got_native->r0, want->r0);
    AssertWithinWcet(facts, *want, "interpreter");
    AssertWithinWcet(facts, *got_plain, "compiled");
    AssertWithinWcet(facts, *got_chk, "compiled-paranoid");
  }
}

// --- generator 1: random instruction soup -------------------------------------

Insn RandomInsn(Rng& rng, size_t prog_len) {
  static constexpr Op kOps[] = {
      Op::kAddReg, Op::kAddImm, Op::kSubReg, Op::kSubImm, Op::kMulImm,
      Op::kDivImm, Op::kModImm, Op::kOrImm,  Op::kAndImm, Op::kLshImm,
      Op::kRshImm, Op::kArshImm, Op::kNeg,   Op::kMovReg, Op::kMovImm,
      Op::kMov32Imm, Op::kBe16,  Op::kBe64,  Op::kLdxB,   Op::kLdxW,
      Op::kLdxDW,  Op::kStxB,   Op::kStxDW,  Op::kStW,    Op::kJa,
      Op::kJeqImm, Op::kJneImm, Op::kJgtReg, Op::kJgeReg, Op::kJltImm,
      Op::kJsgtImm, Op::kJsetImm, Op::kCall, Op::kExit};
  Insn insn;
  insn.op = kOps[rng.NextBounded(sizeof(kOps) / sizeof(kOps[0]))];
  insn.dst = static_cast<uint8_t>(rng.NextBounded(11));
  insn.src = static_cast<uint8_t>(rng.NextBounded(11));
  insn.off =
      static_cast<int16_t>(rng.NextBounded(2 * prog_len) - prog_len);
  if (insn.op == Op::kCall) {
    insn.imm = static_cast<int64_t>(rng.NextBounded(8));
  } else {
    insn.imm = static_cast<int64_t>(rng.NextBounded(64)) - 16;
  }
  return insn;
}

class VerifierSoundnessFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(VerifierSoundnessFuzz, AcceptedRandomProgramsRunWithoutFaults) {
  Rng rng(GetParam());
  int accepted = 0;
  for (int trial = 0; trial < 50'000 && accepted < 60; ++trial) {
    const size_t length = 2 + rng.NextBounded(14);
    Program prog;
    prog.name = "fuzz";
    for (size_t i = 0; i + 1 < length; ++i) {
      prog.insns.push_back(RandomInsn(rng, length));
    }
    prog.insns.push_back(Insn{Op::kExit, 0, 0, 0, 0});

    VerifierOptions options;
    options.max_visited_insns = 20'000;
    AnalysisFacts pkt_facts;
    AnalysisFacts thread_facts;
    const bool packet_ok =
        Verify(prog, ProgramContext::kPacket, options, nullptr, &pkt_facts)
            .ok();
    const bool thread_ok =
        Verify(prog, ProgramContext::kThread, options, nullptr,
               &thread_facts)
            .ok();
    // 64 random inputs per acceptance: the measured instruction count of
    // every execution must stay within the cost pass's wcet_insns.
    if (packet_ok) {
      ++accepted;
      AssertSoundOnPackets(prog, rng, 64, &pkt_facts);
    }
    if (thread_ok) {
      AssertSoundOnScalars(prog, rng, 64, &thread_facts);
    }
  }
  EXPECT_GT(accepted, 0);
}

// --- generator 2: mutated bounds-check templates ------------------------------

// Emits the canonical variable-offset parse with randomized parameters:
//
//   if (pkt + guard > pkt_end) return PASS;
//   off = pkt[probe] & mask;
//   return *(pkt + off + base);   // `width` bytes
//
// The verifier must accept exactly when probe < guard and
// mask + base + width <= guard; the fuzz checks BOTH directions: accepted
// programs never fault, and out-of-range parameter draws are rejected.
struct TemplateParams {
  uint32_t guard;
  uint32_t probe;
  uint32_t mask;
  uint32_t base;
  uint32_t width;
};

Program TemplateProgram(const TemplateParams& p) {
  const Op load = p.width == 1   ? Op::kLdxB
                  : p.width == 2 ? Op::kLdxH
                  : p.width == 4 ? Op::kLdxW
                                 : Op::kLdxDW;
  Program prog;
  prog.name = "tmpl";
  prog.insns = {
      {Op::kMovReg, 3, 1, 0, 0},
      {Op::kAddImm, 3, 0, 0, static_cast<int64_t>(p.guard)},
      {Op::kJgtReg, 3, 2, 5, 0},  // -> pass
      {Op::kLdxB, 4, 1, static_cast<int16_t>(p.probe), 0},
      {Op::kAndImm, 4, 0, 0, static_cast<int64_t>(p.mask)},
      {Op::kAddReg, 1, 4, 0, 0},
      {load, 0, 1, static_cast<int16_t>(p.base), 0},
      {Op::kExit, 0, 0, 0, 0},
      {Op::kMovImm, 0, 0, 0, -1},  // pass: PASS sentinel
      {Op::kExit, 0, 0, 0, 0},
  };
  return prog;
}

TEST_P(VerifierSoundnessFuzz, AcceptedTemplateMutationsRunWithoutFaults) {
  Rng rng(GetParam() ^ 0xfeedface);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    TemplateParams p;
    p.guard = 1 + static_cast<uint32_t>(rng.NextBounded(64));
    p.probe = static_cast<uint32_t>(rng.NextBounded(64));
    p.mask = static_cast<uint32_t>(rng.NextBounded(64));
    p.base = static_cast<uint32_t>(rng.NextBounded(16));
    p.width = 1u << rng.NextBounded(4);
    const Program prog = TemplateProgram(p);

    const bool safe = p.probe + 1 <= p.guard &&
                      p.mask + p.base + p.width <= p.guard;
    AnalysisFacts facts;
    const Status status =
        Verify(prog, ProgramContext::kPacket, {}, nullptr, &facts);
    if (status.ok()) {
      ++accepted;
      // Templates are loop-free: the cost pass must always bound them.
      EXPECT_TRUE(facts.cost.bounded);
      EXPECT_GT(facts.cost.wcet_insns, 0u);
      // Never trust "ok" alone: run it. Unsound acceptance faults here.
      AssertSoundOnPackets(prog, rng, 64, &facts);
      EXPECT_TRUE(safe) << "verifier accepted an unsafe template: guard="
                        << p.guard << " probe=" << p.probe << " mask="
                        << p.mask << " base=" << p.base << " width="
                        << p.width;
    } else {
      ++rejected;
      // The mask is a power-of-two-minus-one only sometimes; the interval
      // engine is allowed to be imprecise, but it must never reject a
      // parameter draw and accept a strictly looser one — spot-check that
      // all definitely-unsafe draws are rejected.
      EXPECT_FALSE(p.mask + p.base + p.width <= p.guard &&
                   p.probe + 1 <= p.guard)
          << "verifier rejected a provably safe template: " << status
          << " guard=" << p.guard << " probe=" << p.probe << " mask="
          << p.mask << " base=" << p.base << " width=" << p.width;
    }
  }
  // The parameter ranges guarantee a healthy mix of both outcomes.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

// Thread-context template: branch-narrowed loop bound. The guard
// `jge r6, N, done` must make the loop verifiable and terminating for any
// runtime r1/r2.
TEST_P(VerifierSoundnessFuzz, AcceptedLoopTemplatesRunWithoutFaults) {
  Rng rng(GetParam() ^ 0x10adb0d5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto bound = static_cast<int64_t>(1 + rng.NextBounded(64));
    Program prog;
    prog.name = "loop_tmpl";
    prog.insns = {
        {Op::kMovImm, 6, 0, 0, 0},
        {Op::kMovImm, 0, 0, 0, 0},
        {Op::kJgeImm, 6, 0, 3, bound},  // -> done
        {Op::kAddImm, 0, 0, 0, 3},
        {Op::kAddImm, 6, 0, 0, 1},
        {Op::kJa, 0, 0, -4, 0},
        {Op::kExit, 0, 0, 0, 0},
    };
    AnalysisFacts facts;
    ASSERT_TRUE(
        Verify(prog, ProgramContext::kThread, {}, nullptr, &facts).ok())
        << "bound=" << bound;
    // The loop bound is concrete, so the cost pass must find the exact
    // worst case: every concrete run then sits at or under it.
    EXPECT_TRUE(facts.cost.bounded) << "bound=" << bound;
    EXPECT_GT(facts.cost.wcet_insns, 0u);
    AssertSoundOnScalars(prog, rng, 8, &facts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierSoundnessFuzz,
                         testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace syrup::bpf
