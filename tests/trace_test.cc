// Trace subsystem tests, including the trace points wired into the stack,
// ghOSt scheduler, and syrupd.
#include <gtest/gtest.h>

#include "src/common/trace.h"
#include "src/core/syrupd.h"
#include "src/ghost/ghost.h"
#include "src/net/stack.h"
#include "src/policies/builtin.h"
#include "src/policies/ghost_policies.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// The tracer is process-global: each test fixture resets it.
class TraceTest : public testing::Test {
 protected:
  TraceTest() { Tracer::Get().Enable(64); }
  ~TraceTest() override { Tracer::Get().Disable(); }
};

TEST_F(TraceTest, DisabledByDefaultCostsNothing) {
  Tracer::Get().Disable();
  SYRUP_TRACE(1, "x", "never recorded");
  EXPECT_EQ(Tracer::Get().total_recorded(), 0u);
}

TEST_F(TraceTest, RecordsEventsInOrder) {
  SYRUP_TRACE(10, "cat", "first " << 1);
  SYRUP_TRACE(20, "cat", "second " << 2);
  const auto events = Tracer::Get().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].when, 10u);
  EXPECT_EQ(events[0].message, "first 1");
  EXPECT_EQ(events[1].message, "second 2");
}

TEST_F(TraceTest, RingDropsOldest) {
  Tracer::Get().Enable(4);
  for (int i = 0; i < 10; ++i) {
    SYRUP_TRACE(static_cast<Time>(i), "cat", "event " << i);
  }
  const auto events = Tracer::Get().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].message, "event 6");
  EXPECT_EQ(events[3].message, "event 9");
  EXPECT_EQ(Tracer::Get().total_recorded(), 10u);
  EXPECT_EQ(Tracer::Get().dropped(), 6u);
}

TEST_F(TraceTest, CategoryFilterAndDump) {
  SYRUP_TRACE(1, "a", "one");
  SYRUP_TRACE(2, "b", "two");
  SYRUP_TRACE(3, "a", "three");
  EXPECT_EQ(Tracer::Get().SnapshotCategory("a").size(), 2u);
  EXPECT_EQ(Tracer::Get().SnapshotCategory("b").size(), 1u);
  const std::string dump = Tracer::Get().Dump();
  EXPECT_NE(dump.find("2 [b] two"), std::string::npos);
}

TEST_F(TraceTest, StackEmitsDropEvents) {
  Simulator sim;
  StackConfig config;
  config.num_nic_queues = 1;
  config.socket_queue_depth = 1;
  HostStack stack(sim, config);
  stack.GetOrCreateGroup(9000)->AddSocket(1);
  for (int i = 0; i < 4; ++i) {
    Packet pkt;
    pkt.tuple.dst_port = 9000;
    pkt.SetHeader(ReqType::kGet, 1, 0, static_cast<uint64_t>(i), 0);
    stack.Rx(pkt);
  }
  sim.RunToCompletion();
  const auto drops = Tracer::Get().SnapshotCategory("stack");
  ASSERT_FALSE(drops.empty());
  EXPECT_NE(drops[0].message.find("socket drop port=9000"),
            std::string::npos);
}

TEST_F(TraceTest, SyrupdEmitsDeployEvents) {
  Simulator sim;
  StackConfig config;
  config.num_nic_queues = 1;
  HostStack stack(sim, config);
  Syrupd syrupd(sim, &stack);
  auto app = syrupd.RegisterApp("traced", 1000, 9000).value();
  ASSERT_TRUE(syrupd
                  .DeployNativePolicy(app,
                                      std::make_shared<RoundRobinPolicy>(2),
                                      Hook::kSocketSelect)
                  .ok());
  const auto events = Tracer::Get().SnapshotCategory("syrupd");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].message.find("app=traced"), std::string::npos);
  EXPECT_NE(events[0].message.find("policy=round_robin"), std::string::npos);
  EXPECT_NE(events[0].message.find("hook=socket_select"), std::string::npos);
}

TEST_F(TraceTest, GhostEmitsCommitAndPreemptEvents) {
  Simulator sim;
  Machine machine(sim, 1);
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 8;
  auto types = CreateMap(spec).value();
  GetPriorityGhostPolicy policy(types);
  GhostConfig ghost_config;
  ghost_config.num_managed_cores = 1;
  GhostScheduler sched(machine, policy, ghost_config);
  machine.SetScheduler(&sched);

  Thread* scan_thread = machine.CreateThread("scan");
  Thread* get_thread = machine.CreateThread("get");
  scan_thread->SetSegmentDoneCallback([] {});
  get_thread->SetSegmentDoneCallback([] {});
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(scan_thread->tid()),
                               static_cast<uint64_t>(ReqType::kScan)).ok());
  ASSERT_TRUE(types->UpdateU64(static_cast<uint32_t>(get_thread->tid()),
                               static_cast<uint64_t>(ReqType::kGet)).ok());
  machine.AddWork(scan_thread, 500 * kMicrosecond);
  machine.Wake(scan_thread);
  sim.ScheduleAt(50 * kMicrosecond, [&]() {
    machine.AddWork(get_thread, 10 * kMicrosecond);
    machine.Wake(get_thread);
  });
  sim.RunToCompletion();

  bool saw_commit = false;
  bool saw_preempt = false;
  for (const auto& event : Tracer::Get().SnapshotCategory("ghost")) {
    saw_commit |= event.message.find("commit") == 0;
    saw_preempt |= event.message.find("preempt") == 0;
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_preempt);
}

}  // namespace
}  // namespace syrup
