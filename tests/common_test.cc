#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/decision.h"
#include "src/common/distributions.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace syrup {
namespace {

// --- Status ------------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, AllConstructorsSetDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(NotFoundError("").code());
  codes.insert(AlreadyExistsError("").code());
  codes.insert(PermissionDeniedError("").code());
  codes.insert(ResourceExhaustedError("").code());
  codes.insert(FailedPreconditionError("").code());
  codes.insert(OutOfRangeError("").code());
  codes.insert(UnimplementedError("").code());
  codes.insert(InternalError("").code());
  codes.insert(UnavailableError("").code());
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  SYRUP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusOr, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

// --- Rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 6ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedRoughlyUniform) {
  Rng rng(9);
  constexpr int kBuckets = 6;
  constexpr int kSamples = 60'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kSamples / kBuckets, kSamples / 100);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

// --- Distributions -------------------------------------------------------------

TEST(Distributions, UniformDurationWithinBounds) {
  Rng rng(3);
  UniformDuration d(10, 12);
  for (int i = 0; i < 1000; ++i) {
    const Duration v = d.Sample(rng);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Distributions, ExponentialMeanMatchesRate) {
  Rng rng(5);
  constexpr double kRate = 100'000;  // mean gap 10us
  ExponentialDuration d(kRate);
  double sum = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(d.Sample(rng));
  }
  const double mean_us = sum / kSamples / 1000.0;
  EXPECT_NEAR(mean_us, 10.0, 0.2);
}

TEST(Distributions, DiscreteIndexRespectsWeights) {
  Rng rng(6);
  DiscreteIndex d({99.5, 0.5});
  int rare = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    if (d.Sample(rng) == 1) {
      ++rare;
    }
  }
  EXPECT_NEAR(rare, kSamples * 0.005, kSamples * 0.001);
}

TEST(Distributions, ZipfSkewsTowardSmallIndices) {
  Rng rng(8);
  ZipfIndex zipf(1000, 0.99);
  int head = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++head;
    }
  }
  // Top 1% of keys should receive far more than 1% of traffic.
  EXPECT_GT(head, kSamples / 5);
}

TEST(Distributions, ZipfThetaZeroIsUniform) {
  Rng rng(8);
  ZipfIndex zipf(100, 0.0);
  int head = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++head;
    }
  }
  EXPECT_NEAR(head, 5000, 500);
}

// --- Histogram ------------------------------------------------------------------

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ExactForSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 31; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 31u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_EQ(h.Percentile(100), 30u);
}

TEST(Histogram, PercentileWithinRelativeError) {
  Histogram h;
  for (uint64_t v = 1; v <= 100'000; ++v) {
    h.Record(v);
  }
  // Log-linear bucketing bounds relative error by ~1/32 per bucket.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50'000.0, 50'000 / 16.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99'000.0, 99'000 / 16.0);
  EXPECT_EQ(h.Percentile(100), 100'000u);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(60);
  EXPECT_DOUBLE_EQ(h.Mean(), 30.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(100);
  b.Record(200);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 300u);
}

TEST(Histogram, RecordNAndReset) {
  Histogram h;
  h.RecordN(50, 1000);
  EXPECT_EQ(h.count(), 1000u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ClampsToMaxValue) {
  Histogram h(1 << 20);
  h.Record(uint64_t{1} << 40);  // way beyond max: clamps, doesn't crash
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    h.Record(rng.NextBounded(1'000'000));
  }
  uint64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const uint64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

// --- hash / decision -----------------------------------------------------------

TEST(Hash, Fnv1aStable) {
  const char data[] = "syrup";
  EXPECT_EQ(Fnv1a64(data, 5), Fnv1a64(data, 5));
  EXPECT_NE(Fnv1a64(data, 5), Fnv1a64(data, 4));
}

TEST(Hash, Mix64Distributes) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Decision, SentinelsAreNotExecutors) {
  EXPECT_FALSE(IsExecutorIndex(kPass));
  EXPECT_FALSE(IsExecutorIndex(kDrop));
  EXPECT_TRUE(IsExecutorIndex(0));
  EXPECT_TRUE(IsExecutorIndex(5));
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(ToMicros(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_EQ(FromMicros(2.5), 2500u);
}

}  // namespace
}  // namespace syrup
