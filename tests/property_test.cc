// Property-based tests: parameterized sweeps asserting invariants that must
// hold across the whole configuration space, plus a randomized fuzz of the
// verifier/interpreter pair (the untrusted-code boundary).
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "src/bpf/assembler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/verifier.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/map/hash_map.h"
#include "src/net/packet.h"
#include "src/policies/builtin.h"
#include "src/sched/machine.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// --- Histogram: quantile correctness across bucket scales -------------------------

class HistogramScaleTest : public testing::TestWithParam<uint64_t> {};

TEST_P(HistogramScaleTest, QuantilesBoundedRelativeError) {
  const uint64_t scale = GetParam();
  Histogram histogram;
  Rng rng(scale);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t v = rng.NextBounded(scale) + 1;
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto rank = static_cast<size_t>(q * (values.size() - 1));
    const double exact = static_cast<double>(values[rank]);
    const double approx = static_cast<double>(histogram.ValueAtQuantile(q));
    EXPECT_NEAR(approx, exact, exact / 10.0 + 2.0)
        << "scale=" << scale << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramScaleTest,
                         testing::Values(100, 10'000, 1'000'000,
                                         100'000'000, 10'000'000'000ULL));

// --- Round robin: perfect balance for any executor count ----------------------------

class RoundRobinBalanceTest : public testing::TestWithParam<uint32_t> {};

TEST_P(RoundRobinBalanceTest, PerfectBalanceProperty) {
  const uint32_t n = GetParam();
  RoundRobinPolicy policy(n);
  Packet pkt;
  pkt.SetHeader(ReqType::kGet, 1, 0, 1, 0);
  const PacketView view = PacketView::Of(pkt);
  std::vector<int> counts(n, 0);
  const int kRounds = 40;
  for (uint32_t i = 0; i < n * kRounds; ++i) {
    const Decision d = policy.Schedule(view);
    ASSERT_LT(d, n);
    ++counts[d];
  }
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i], kRounds);
  }
}

INSTANTIATE_TEST_SUITE_P(ExecutorCounts, RoundRobinBalanceTest,
                         testing::Values(1, 2, 3, 6, 8, 17, 64));

// --- SITA: partition property for any executor count >= 2 ----------------------------

class SitaPartitionTest : public testing::TestWithParam<uint32_t> {};

TEST_P(SitaPartitionTest, ScansAndGetsNeverShareSocketZero) {
  const uint32_t n = GetParam();
  SitaPolicy policy(n);
  Rng rng(n);
  Packet pkt;
  for (int i = 0; i < 500; ++i) {
    const bool scan = rng.NextBounded(4) == 0;
    pkt.SetHeader(scan ? ReqType::kScan : ReqType::kGet, 1, 0, 1, 0);
    const Decision d = policy.Schedule(PacketView::Of(pkt));
    ASSERT_LT(d, n);
    if (scan) {
      EXPECT_EQ(d, 0u);
    } else {
      EXPECT_GE(d, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ExecutorCounts, SitaPartitionTest,
                         testing::Values(2, 3, 6, 12, 36));

// --- HashMap vs reference model under random operations -------------------------------

class HashMapModelTest : public testing::TestWithParam<uint64_t> {};

TEST_P(HashMapModelTest, MatchesReferenceModel) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 64;
  HashMap map(spec);
  std::map<uint32_t, uint64_t> model;
  Rng rng(GetParam());

  for (int op = 0; op < 5'000; ++op) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(96));
    switch (rng.NextBounded(3)) {
      case 0: {  // update
        const uint64_t value = rng.Next();
        const Status status = map.UpdateU64(key, value);
        if (model.size() >= 64 && model.find(key) == model.end()) {
          EXPECT_FALSE(status.ok());
        } else {
          ASSERT_TRUE(status.ok());
          model[key] = value;
        }
        break;
      }
      case 1: {  // lookup
        auto result = map.LookupU64(key);
        auto it = model.find(key);
        ASSERT_EQ(result.ok(), it != model.end()) << "key " << key;
        if (result.ok()) {
          ASSERT_EQ(*result, it->second);
        }
        break;
      }
      case 2: {  // delete
        const bool existed = model.erase(key) > 0;
        EXPECT_EQ(map.Delete(&key).ok(), existed);
        break;
      }
    }
    ASSERT_EQ(map.Size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashMapModelTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Machine: work conservation across thread/core mixes -------------------------------

struct MachineShape {
  int cores;
  int threads;
  int segments_per_thread;
};

class MachineConservationTest
    : public testing::TestWithParam<MachineShape> {};

TEST_P(MachineConservationTest, AllWorkCompletesAndCpuTimeBalances) {
  const MachineShape shape = GetParam();
  Simulator sim;
  Machine machine(sim, shape.cores);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Rng rng(7);

  struct WorkerState {
    Thread* thread;
    int remaining_segments;
    Duration total_work = 0;
  };
  std::vector<WorkerState> workers;
  workers.reserve(static_cast<size_t>(shape.threads));
  for (int i = 0; i < shape.threads; ++i) {
    workers.push_back(
        {machine.CreateThread("w"), shape.segments_per_thread, 0});
  }
  int completions = 0;
  for (auto& w : workers) {
    WorkerState* state = &w;
    w.thread->SetSegmentDoneCallback([&, state]() {
      ++completions;
      if (--state->remaining_segments > 0) {
        const Duration work = 100 + rng.NextBounded(900);
        state->total_work += work;
        machine.AddWork(state->thread, work);
      } else {
        machine.Block(state->thread);
      }
    });
    const Duration work = 100 + rng.NextBounded(900);
    w.total_work += work;
    machine.AddWork(w.thread, work);
    machine.Wake(w.thread);
  }
  sim.RunToCompletion();

  EXPECT_EQ(completions, shape.threads * shape.segments_per_thread);
  Duration total_cpu = 0;
  for (const auto& w : workers) {
    EXPECT_EQ(w.thread->total_cpu(), w.total_work)
        << "thread CPU time must equal submitted work";
    EXPECT_EQ(w.thread->state(), Thread::State::kBlocked);
    total_cpu += w.thread->total_cpu();
  }
  // Makespan bounds: no faster than perfect parallelism, no slower than
  // fully serialized execution.
  EXPECT_GE(sim.Now() * static_cast<uint64_t>(shape.cores), total_cpu);
  EXPECT_LE(sim.Now(), total_cpu);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MachineConservationTest,
    testing::Values(MachineShape{1, 1, 10}, MachineShape{1, 4, 10},
                    MachineShape{4, 4, 10}, MachineShape{2, 8, 5},
                    MachineShape{6, 36, 3}, MachineShape{8, 8, 20}));

// --- Verifier/interpreter fuzz -----------------------------------------------------------

// Random instruction streams must never crash: each either fails
// verification or, if verified, executes within bounds on a real packet.
class VerifierFuzzTest : public testing::TestWithParam<uint64_t> {};

bpf::Insn RandomInsn(Rng& rng, size_t prog_len) {
  using bpf::Op;
  static constexpr Op kOps[] = {
      Op::kAddReg, Op::kAddImm, Op::kSubReg, Op::kSubImm, Op::kMulImm,
      Op::kDivImm, Op::kModImm, Op::kOrImm, Op::kAndImm, Op::kLshImm,
      Op::kRshImm, Op::kNeg, Op::kMovReg, Op::kMovImm, Op::kMov32Imm,
      Op::kBe16, Op::kLdxB, Op::kLdxW, Op::kLdxDW, Op::kStxB, Op::kStxDW,
      Op::kStW, Op::kJa, Op::kJeqImm, Op::kJneImm, Op::kJgtReg, Op::kJgeReg,
      Op::kJltImm, Op::kJsgtImm, Op::kJsetImm, Op::kCall, Op::kExit};
  bpf::Insn insn;
  insn.op = kOps[rng.NextBounded(sizeof(kOps) / sizeof(kOps[0]))];
  insn.dst = static_cast<uint8_t>(rng.NextBounded(11));
  insn.src = static_cast<uint8_t>(rng.NextBounded(11));
  insn.off = static_cast<int16_t>(rng.NextBounded(2 * prog_len) -
                                  prog_len);
  if (insn.op == Op::kCall) {
    insn.imm = static_cast<int64_t>(rng.NextBounded(8));
  } else {
    insn.imm = static_cast<int64_t>(rng.NextBounded(64)) - 16;
  }
  return insn;
}

TEST_P(VerifierFuzzTest, NeverCrashesAlwaysBounded) {
  Rng rng(GetParam());
  int verified = 0;
  for (int trial = 0; trial < 2'000; ++trial) {
    const size_t length = 2 + rng.NextBounded(14);
    bpf::Program prog;
    prog.name = "fuzz";
    for (size_t i = 0; i + 1 < length; ++i) {
      prog.insns.push_back(RandomInsn(rng, length));
    }
    prog.insns.push_back(bpf::Insn{bpf::Op::kExit, 0, 0, 0, 0});

    bpf::VerifierOptions options;
    options.max_visited_insns = 20'000;
    const Status status =
        bpf::Verify(prog, bpf::ProgramContext::kPacket, options);
    if (!status.ok()) {
      continue;
    }
    ++verified;
    // Verified: must run to completion against a real packet without
    // tripping the runtime bounds checks.
    Packet pkt;
    pkt.SetHeader(ReqType::kGet, 1, 2, 3, 4);
    bpf::ExecEnv env;
    env.random_u32 = [&rng]() { return static_cast<uint32_t>(rng.Next()); };
    env.ktime_ns = []() { return 0u; };
    bpf::Interpreter interp(env);
    auto result = interp.Run(
        prog, reinterpret_cast<uint64_t>(pkt.wire.data()),
        reinterpret_cast<uint64_t>(pkt.wire.data() + pkt.wire.size()),
        /*args_are_packet=*/true);
    EXPECT_TRUE(result.ok())
        << "verified program faulted at runtime: " << result.status();
  }
  // The generator is crude, but some trivially-safe programs should pass.
  EXPECT_GT(verified, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierFuzzTest,
                         testing::Values(11, 22, 33, 44, 55, 66));

// --- Token policy: admission accounting invariant ------------------------------------------

class TokenAccountingTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TokenAccountingTest, AdmittedNeverExceedsIssuedTokens) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 8;
  auto tokens = CreateMap(spec).value();
  const uint64_t issued = GetParam();
  ASSERT_TRUE(tokens->UpdateU64(1, issued).ok());
  TokenPolicy policy(tokens);
  Packet pkt;
  pkt.tuple.dst_port = 9000;
  uint64_t admitted = 0;
  for (int i = 0; i < 200; ++i) {
    pkt.SetHeader(ReqType::kGet, /*user_id=*/1, 0, 1, 0);
    if (policy.Schedule(PacketView::Of(pkt)) != kDrop) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, std::min<uint64_t>(issued, 200));
}

INSTANTIATE_TEST_SUITE_P(TokenBudgets, TokenAccountingTest,
                         testing::Values(0, 1, 5, 35, 199, 200, 1000));


// --- Assembler fuzz: arbitrary text never crashes -------------------------------------

class AssemblerFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(AssemblerFuzzTest, ArbitraryTextIsRejectedOrParsed) {
  Rng rng(GetParam());
  const char* fragments[] = {
      "mov", "add", "ldxw", "stxdw", "jeq", "call", "exit", "ja",
      "r0", "r1", "r10", "r11", "rX", "[r1+4]", "[r10-8]", "[bogus]",
      "0", "-1", "0xFF", "PASS", "DROP", "label:", "label", ",", "+2",
      ".map", ".name", ".ctx", ".extern_map", "array", "hash", "packet",
      "4", "8", "16", ";comment", "###", "", "\t"};
  constexpr size_t kFragments = sizeof(fragments) / sizeof(fragments[0]);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string source;
    const int lines = 1 + static_cast<int>(rng.NextBounded(10));
    for (int line = 0; line < lines; ++line) {
      const int tokens = static_cast<int>(rng.NextBounded(5));
      for (int tok = 0; tok < tokens; ++tok) {
        source += fragments[rng.NextBounded(kFragments)];
        source += ' ';
      }
      source += '\n';
    }
    // Must not crash; outcome (ok or error) is irrelevant, but a parsed
    // program must survive verification-or-rejection too.
    auto assembled = bpf::Assemble(source);
    if (assembled.ok()) {
      bpf::Program prog;
      prog.insns = assembled->insns;
      for (const auto& slot : assembled->map_slots) {
        if (!slot.is_extern) {
          auto map = CreateMap(slot.spec);
          if (!map.ok()) {
            prog.maps.clear();
            break;
          }
          prog.maps.push_back(*map);
        } else {
          MapSpec spec;
          spec.type = MapType::kHash;
          spec.max_entries = 4;
          prog.maps.push_back(CreateMap(spec).value());
        }
      }
      bpf::VerifierOptions options;
      options.max_visited_insns = 5'000;
      (void)bpf::Verify(prog, bpf::ProgramContext::kPacket, options);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzzTest,
                         testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace syrup
