#include <gtest/gtest.h>

#include <vector>

#include "src/sched/cfs_scheduler.h"
#include "src/sched/machine.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// --- Machine with pinned scheduler ------------------------------------------------

TEST(Machine, ThreadRunsToSegmentCompletion) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);

  Thread* thread = machine.CreateThread("worker");
  int completions = 0;
  thread->SetSegmentDoneCallback([&]() {
    ++completions;
    machine.Block(thread);
  });

  machine.AddWork(thread, 100);
  machine.Wake(thread);
  sim.RunToCompletion();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(sim.Now(), 100u);
  EXPECT_EQ(thread->state(), Thread::State::kBlocked);
  EXPECT_EQ(thread->total_cpu(), 100u);
}

TEST(Machine, BackToBackSegments) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);

  Thread* thread = machine.CreateThread("worker");
  int completions = 0;
  thread->SetSegmentDoneCallback([&]() {
    if (++completions < 3) {
      machine.AddWork(thread, 50);  // keep running: next request
    } else {
      machine.Block(thread);
    }
  });
  machine.AddWork(thread, 50);
  machine.Wake(thread);
  sim.RunToCompletion();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(sim.Now(), 150u);
}

TEST(Machine, ImplicitBlockWhenCallbackDoesNothing) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* thread = machine.CreateThread("worker");
  machine.AddWork(thread, 10);
  machine.Wake(thread);
  sim.RunToCompletion();
  EXPECT_EQ(thread->state(), Thread::State::kBlocked);
}

TEST(Machine, PinnedThreadsShareNothing) {
  Simulator sim;
  Machine machine(sim, 2);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);

  Thread* a = machine.CreateThread("a");  // tid 1 -> core 0
  Thread* b = machine.CreateThread("b");  // tid 2 -> core 1
  std::vector<Time> done;
  a->SetSegmentDoneCallback([&]() { done.push_back(sim.Now()); });
  b->SetSegmentDoneCallback([&]() { done.push_back(sim.Now()); });
  machine.AddWork(a, 100);
  machine.AddWork(b, 100);
  machine.Wake(a);
  machine.Wake(b);
  sim.RunToCompletion();
  // Both finish at t=100: they ran in parallel on separate cores.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100u);
  EXPECT_EQ(done[1], 100u);
}

TEST(Machine, PinnedQueuesWhenCoreBusy) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* a = machine.CreateThread("a");
  Thread* b = machine.CreateThread("b");  // same core as a (1 core)
  std::vector<std::pair<std::string, Time>> done;
  a->SetSegmentDoneCallback([&]() { done.push_back({"a", sim.Now()}); });
  b->SetSegmentDoneCallback([&]() { done.push_back({"b", sim.Now()}); });
  machine.AddWork(a, 100);
  machine.AddWork(b, 50);
  machine.Wake(a);
  machine.Wake(b);
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, "a");
  EXPECT_EQ(done[0].second, 100u);
  EXPECT_EQ(done[1].first, "b");
  EXPECT_EQ(done[1].second, 150u);  // serialized behind a
}

TEST(Machine, PreemptMidSegmentPreservesRemainingWork) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* thread = machine.CreateThread("worker");
  Time finished = 0;
  thread->SetSegmentDoneCallback([&]() { finished = sim.Now(); });
  machine.AddWork(thread, 100);
  machine.Wake(thread);

  sim.ScheduleAt(40, [&]() { machine.Preempt(0); });
  sim.RunToCompletion();
  // Preempted at 40 with 60 remaining; pinned scheduler re-dispatches
  // immediately, so completion lands at 100 total CPU.
  EXPECT_EQ(finished, 100u);
  EXPECT_EQ(thread->total_cpu(), 100u);
}

TEST(Machine, PreemptIdleCoreIsNoop) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  machine.Preempt(0);  // no crash
  EXPECT_EQ(machine.CurrentOn(0), nullptr);
}

TEST(Machine, CoreUtilizationTracksBusyTime) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* thread = machine.CreateThread("worker");
  machine.AddWork(thread, 250);
  machine.Wake(thread);
  sim.RunUntil(1000);
  EXPECT_NEAR(machine.CoreUtilization(0), 0.25, 0.01);
}

TEST(Machine, WakeWithoutWorkDies) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* thread = machine.CreateThread("worker");
  EXPECT_DEATH(machine.Wake(thread), "with no work");
}

// --- CFS ---------------------------------------------------------------------------

struct CfsRig {
  CfsRig(int cores, CfsParams params = {})
      : machine(sim, cores), sched(machine, params) {
    machine.SetScheduler(&sched);
  }
  Simulator sim;
  Machine machine;
  CfsScheduler sched;
};

TEST(Cfs, SingleThreadRunsImmediately) {
  CfsRig rig(1);
  Thread* thread = rig.machine.CreateThread("t");
  Time done = 0;
  thread->SetSegmentDoneCallback([&]() { done = rig.sim.Now(); });
  rig.machine.AddWork(thread, 100);
  rig.machine.Wake(thread);
  rig.sim.RunToCompletion();
  EXPECT_EQ(done, 100u);
}

TEST(Cfs, FairSharingOfOneCore) {
  // Two CPU-bound threads on one core finish in about 2x the solo time,
  // interleaved by timeslices.
  CfsRig rig(1);
  Thread* a = rig.machine.CreateThread("a");
  Thread* b = rig.machine.CreateThread("b");
  std::vector<Time> done;
  a->SetSegmentDoneCallback([&]() { done.push_back(rig.sim.Now()); });
  b->SetSegmentDoneCallback([&]() { done.push_back(rig.sim.Now()); });
  const Duration work = 10 * kMillisecond;
  rig.machine.AddWork(a, work);
  rig.machine.AddWork(b, work);
  rig.machine.Wake(a);
  rig.machine.Wake(b);
  rig.sim.RunToCompletion();
  ASSERT_EQ(done.size(), 2u);
  // Interleaving: neither finishes before the other has made real progress.
  EXPECT_GT(done[0], work + work / 2);
  EXPECT_NEAR(static_cast<double>(done[1]), 2.0 * work, 2.0 * work * 0.1);
}

TEST(Cfs, UsesAllCores) {
  CfsRig rig(3);
  std::vector<Thread*> threads;
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    Thread* thread = rig.machine.CreateThread("t");
    thread->SetSegmentDoneCallback([&]() { ++completions; });
    rig.machine.AddWork(thread, 1000);
    threads.push_back(thread);
  }
  for (Thread* thread : threads) {
    rig.machine.Wake(thread);
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(rig.sim.Now(), 1000u);  // fully parallel
}

TEST(Cfs, WakeupPreemptsLongRunner) {
  // A long CPU hog gets preempted when a fresh thread wakes after the hog
  // has accumulated vruntime beyond wakeup_granularity.
  CfsParams params;
  params.wakeup_granularity = 1 * kMillisecond;
  CfsRig rig(1, params);
  Thread* hog = rig.machine.CreateThread("hog");
  Thread* sprinter = rig.machine.CreateThread("sprinter");
  Time sprinter_done = 0;
  hog->SetSegmentDoneCallback([] {});
  sprinter->SetSegmentDoneCallback([&]() { sprinter_done = rig.sim.Now(); });

  rig.machine.AddWork(hog, 100 * kMillisecond);
  rig.machine.Wake(hog);
  rig.sim.ScheduleAt(10 * kMillisecond, [&]() {
    rig.machine.AddWork(sprinter, 10 * kMicrosecond);
    rig.machine.Wake(sprinter);
  });
  rig.sim.RunToCompletion();
  // Far sooner than waiting out the hog's remaining 90ms.
  EXPECT_LT(sprinter_done, 15 * kMillisecond);
  EXPECT_GT(sprinter_done, 0u);
}

TEST(Cfs, ObliviousToRequestType) {
  // The Fig. 8 premise: CFS gives no priority to short work. A short
  // segment arriving behind queued long segments waits at least a
  // min_granularity-scale delay.
  CfsParams params;
  CfsRig rig(1, params);
  Thread* longa = rig.machine.CreateThread("long_a");
  Thread* longb = rig.machine.CreateThread("long_b");
  Thread* shorty = rig.machine.CreateThread("short");
  Time short_done = 0;
  longa->SetSegmentDoneCallback([] {});
  longb->SetSegmentDoneCallback([] {});
  shorty->SetSegmentDoneCallback([&]() { short_done = rig.sim.Now(); });
  rig.machine.AddWork(longa, 5 * kMillisecond);
  rig.machine.AddWork(longb, 5 * kMillisecond);
  rig.machine.Wake(longa);
  rig.machine.Wake(longb);
  rig.sim.ScheduleAt(100 * kMicrosecond, [&]() {
    rig.machine.AddWork(shorty, 10 * kMicrosecond);
    rig.machine.Wake(shorty);
  });
  rig.sim.RunToCompletion();
  // The short request cannot jump the line instantly.
  EXPECT_GT(short_done, 500 * kMicrosecond);
}


TEST(Cfs, ManyThreadsAllComplete) {
  CfsRig rig(2);
  int completions = 0;
  std::vector<Thread*> threads;
  for (int i = 0; i < 12; ++i) {
    Thread* thread = rig.machine.CreateThread("t");
    thread->SetSegmentDoneCallback([&]() { ++completions; });
    rig.machine.AddWork(thread, 2 * kMillisecond);
    threads.push_back(thread);
  }
  for (Thread* thread : threads) {
    rig.machine.Wake(thread);
  }
  rig.sim.RunToCompletion();
  EXPECT_EQ(completions, 12);
  // 12 x 2ms over 2 cores = 12ms minimum makespan.
  EXPECT_GE(rig.sim.Now(), 12 * kMillisecond);
  EXPECT_LE(rig.sim.Now(), 13 * kMillisecond);  // near-work-conserving
}

TEST(Cfs, LongRunnersShareFairly) {
  // Three equal CPU hogs on one core finish within a slice of each other.
  CfsRig rig(1);
  std::vector<Time> done;
  std::vector<Thread*> threads;
  for (int i = 0; i < 3; ++i) {
    Thread* thread = rig.machine.CreateThread("hog");
    thread->SetSegmentDoneCallback([&]() { done.push_back(rig.sim.Now()); });
    rig.machine.AddWork(thread, 20 * kMillisecond);
    threads.push_back(thread);
  }
  for (Thread* thread : threads) {
    rig.machine.Wake(thread);
  }
  rig.sim.RunToCompletion();
  ASSERT_EQ(done.size(), 3u);
  // All three finish in the last ~10% of the run: fair interleaving.
  EXPECT_GT(done.front(), 50 * kMillisecond);
  EXPECT_EQ(done.back(), 60 * kMillisecond);
}

TEST(Cfs, BlockedThreadConsumesNoCpu) {
  CfsRig rig(1);
  Thread* active = rig.machine.CreateThread("active");
  Thread* sleeper = rig.machine.CreateThread("sleeper");
  active->SetSegmentDoneCallback([] {});
  sleeper->SetSegmentDoneCallback([] {});
  rig.machine.AddWork(active, 5 * kMillisecond);
  rig.machine.Wake(active);
  rig.sim.RunToCompletion();
  EXPECT_EQ(sleeper->total_cpu(), 0u);
  EXPECT_EQ(active->total_cpu(), 5 * kMillisecond);
}

TEST(Machine, PreemptStorm) {
  // Hammer a running thread with preemptions; work is still conserved.
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* thread = machine.CreateThread("victim");
  Time done = 0;
  thread->SetSegmentDoneCallback([&]() { done = sim.Now(); });
  machine.AddWork(thread, 100 * kMicrosecond);
  machine.Wake(thread);
  for (int i = 1; i <= 50; ++i) {
    sim.ScheduleAt(static_cast<Time>(i) * 1500, [&machine]() {
      machine.Preempt(0);
    });
  }
  sim.RunToCompletion();
  EXPECT_EQ(done, 100 * kMicrosecond);  // pinned resumes instantly
  EXPECT_EQ(thread->total_cpu(), 100 * kMicrosecond);
}

TEST(Machine, AddWorkWhileRunningExtendsSegment) {
  Simulator sim;
  Machine machine(sim, 1);
  PinnedScheduler sched(machine);
  machine.SetScheduler(&sched);
  Thread* thread = machine.CreateThread("t");
  Time done = 0;
  thread->SetSegmentDoneCallback([&]() { done = sim.Now(); });
  machine.AddWork(thread, 100);
  machine.Wake(thread);
  // Mid-run, more work lands on the same segment.
  sim.ScheduleAt(50, [&]() { machine.AddWork(thread, 70); });
  sim.RunToCompletion();
  EXPECT_EQ(done, 170u);
}

}  // namespace
}  // namespace syrup
