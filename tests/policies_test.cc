// Policy behaviour tests plus native-vs-bytecode equivalence: for every
// shipped policy, the bytecode twin (deployed through verifier+interpreter)
// must make the same decision as the native C++ mirror on identical inputs.
#include <gtest/gtest.h>

#include <memory>

#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/common/rng.h"
#include "src/core/policy.h"
#include "src/map/map.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

Packet MakePacket(ReqType type, uint16_t src_port = 20'000,
                  uint32_t user_id = 1, uint32_t key_hash = 0) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a0000ff;
  pkt.tuple.src_port = src_port;
  pkt.tuple.dst_port = 9000;
  pkt.SetHeader(type, user_id, key_hash, 1, 0);
  return pkt;
}

// Loads a bytecode policy, resolving declared maps. Returns the policy and
// exposes its maps for test setup.
struct LoadedPolicy {
  std::unique_ptr<BytecodePacketPolicy> policy;
  std::vector<std::shared_ptr<Map>> maps;
};

LoadedPolicy LoadBytecode(const std::string& source, bpf::ExecEnv env = {}) {
  auto assembled = bpf::Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  auto program = std::make_shared<bpf::Program>();
  program->name = assembled->name;
  program->insns = assembled->insns;
  LoadedPolicy out;
  for (const bpf::MapSlot& slot : assembled->map_slots) {
    auto map = CreateMap(slot.spec).value();
    out.maps.push_back(map);
    program->maps.push_back(map);
  }
  EXPECT_TRUE(bpf::Verify(*program, bpf::ProgramContext::kPacket).ok())
      << source;
  out.policy = std::make_unique<BytecodePacketPolicy>(program, std::move(env));
  return out;
}

// --- Round Robin ------------------------------------------------------------------

TEST(RoundRobin, CyclesThroughExecutors) {
  RoundRobinPolicy policy(3);
  Packet pkt = MakePacket(ReqType::kGet);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(policy.Schedule(view), 1u);
  EXPECT_EQ(policy.Schedule(view), 2u);
  EXPECT_EQ(policy.Schedule(view), 0u);
  EXPECT_EQ(policy.Schedule(view), 1u);
}

TEST(RoundRobin, NativeMatchesBytecode) {
  RoundRobinPolicy native(6);
  LoadedPolicy bytecode = LoadBytecode(RoundRobinPolicyAsm(6));
  Packet pkt = MakePacket(ReqType::kGet);
  const PacketView view = PacketView::Of(pkt);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view))
        << "diverged at decision " << i;
  }
}

// --- Hash -------------------------------------------------------------------------

TEST(Hash, DeterministicPerFlow) {
  HashPolicy policy(6);
  Packet a = MakePacket(ReqType::kGet, 20'001);
  Packet b = MakePacket(ReqType::kGet, 20'002);
  EXPECT_EQ(policy.Schedule(PacketView::Of(a)),
            policy.Schedule(PacketView::Of(a)));
  // (not guaranteed distinct, but must be in range)
  EXPECT_LT(policy.Schedule(PacketView::Of(b)), 6u);
}

TEST(Hash, NativeMatchesBytecode) {
  HashPolicy native(6);
  LoadedPolicy bytecode = LoadBytecode(HashPolicyAsm(6));
  for (uint16_t flow = 0; flow < 200; ++flow) {
    Packet pkt = MakePacket(ReqType::kGet, 20'000 + flow);
    const PacketView view = PacketView::Of(pkt);
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view))
        << "flow " << flow;
  }
}

TEST(Hash, ShortPacketPasses) {
  HashPolicy native(6);
  LoadedPolicy bytecode = LoadBytecode(HashPolicyAsm(6));
  Packet pkt = MakePacket(ReqType::kGet);
  PacketView view{pkt.wire.data(), pkt.wire.data() + 2};
  EXPECT_EQ(native.Schedule(view), kPass);
  EXPECT_EQ(bytecode.policy->Schedule(view), kPass);
}

// --- SITA ------------------------------------------------------------------------

TEST(Sita, ScansToSocketZeroGetsRoundRobinRest) {
  SitaPolicy policy(6);
  Packet scan = MakePacket(ReqType::kScan);
  Packet get = MakePacket(ReqType::kGet);
  EXPECT_EQ(policy.Schedule(PacketView::Of(scan)), 0u);
  EXPECT_EQ(policy.Schedule(PacketView::Of(get)), 2u);  // 1 + (1 % 5)
  EXPECT_EQ(policy.Schedule(PacketView::Of(get)), 3u);
  EXPECT_EQ(policy.Schedule(PacketView::Of(scan)), 0u);
  // GETs never land on socket 0.
  for (int i = 0; i < 20; ++i) {
    const Decision d = policy.Schedule(PacketView::Of(get));
    EXPECT_GE(d, 1u);
    EXPECT_LT(d, 6u);
  }
}

TEST(Sita, NativeMatchesBytecode) {
  SitaPolicy native(6);
  LoadedPolicy bytecode = LoadBytecode(SitaPolicyAsm(6));
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const ReqType type =
        rng.NextBounded(10) == 0 ? ReqType::kScan : ReqType::kGet;
    Packet pkt = MakePacket(type);
    const PacketView view = PacketView::Of(pkt);
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view));
  }
}

TEST(Sita, RuntPacketPasses) {
  SitaPolicy native(6);
  Packet pkt = MakePacket(ReqType::kScan);
  PacketView view{pkt.wire.data(), pkt.wire.data() + 12};
  EXPECT_EQ(native.Schedule(view), kPass);
  LoadedPolicy bytecode = LoadBytecode(SitaPolicyAsm(6));
  EXPECT_EQ(bytecode.policy->Schedule(view), kPass);
}

// --- SCAN Avoid -------------------------------------------------------------------

TEST(ScanAvoid, AvoidsSocketsMarkedScan) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = 4;
  auto scan_map = CreateMap(spec).value();
  // Sockets 0..2 busy with SCANs; only 3 is free.
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        scan_map->UpdateU64(i, static_cast<uint64_t>(ReqType::kScan)).ok());
  }
  ASSERT_TRUE(
      scan_map->UpdateU64(3, static_cast<uint64_t>(ReqType::kGet)).ok());

  auto rng = std::make_shared<Rng>(1);
  ScanAvoidPolicy policy(4, scan_map,
                         [rng]() { return static_cast<uint32_t>(rng->Next()); });
  Packet pkt = MakePacket(ReqType::kGet);
  int found_free = 0;
  for (int i = 0; i < 100; ++i) {
    if (policy.Schedule(PacketView::Of(pkt)) == 3u) {
      ++found_free;
    }
  }
  // Random probing with 4 attempts finds the single free socket most of
  // the time ((3/4)^4 ≈ 32% miss rate).
  EXPECT_GT(found_free, 50);
}

TEST(ScanAvoid, AllScansReturnsSomeSocket) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = 4;
  auto scan_map = CreateMap(spec).value();
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        scan_map->UpdateU64(i, static_cast<uint64_t>(ReqType::kScan)).ok());
  }
  auto rng = std::make_shared<Rng>(2);
  ScanAvoidPolicy policy(4, scan_map,
                         [rng]() { return static_cast<uint32_t>(rng->Next()); });
  Packet pkt = MakePacket(ReqType::kGet);
  const Decision d = policy.Schedule(PacketView::Of(pkt));
  EXPECT_LT(d, 4u);  // falls back to the last probed socket, not PASS/DROP
}

TEST(ScanAvoid, NativeMatchesBytecodeWithSharedRandomness) {
  // Drive both from the same deterministic random stream and the same map.
  LoadedPolicy bytecode = [] {
    auto shared_rng = std::make_shared<Rng>(99);
    bpf::ExecEnv env;
    env.random_u32 = [shared_rng]() {
      return static_cast<uint32_t>(shared_rng->Next());
    };
    return LoadBytecode(ScanAvoidPolicyAsm(6), env);
  }();
  auto native_rng = std::make_shared<Rng>(99);
  ScanAvoidPolicy native(6, bytecode.maps[0], [native_rng]() {
    return static_cast<uint32_t>(native_rng->Next());
  });

  Rng scenario(5);
  Packet pkt = MakePacket(ReqType::kGet);
  const PacketView view = PacketView::Of(pkt);
  for (int round = 0; round < 100; ++round) {
    // Random scan/get pattern across the sockets each round.
    for (uint32_t i = 0; i < 6; ++i) {
      const uint64_t type = scenario.NextBounded(2) == 0
                                ? static_cast<uint64_t>(ReqType::kGet)
                                : static_cast<uint64_t>(ReqType::kScan);
      ASSERT_TRUE(bytecode.maps[0]->UpdateU64(i, type).ok());
    }
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view))
        << "diverged at round " << round;
  }
}

// --- Token ------------------------------------------------------------------------

std::shared_ptr<Map> TokenMap() {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 64;
  return CreateMap(spec).value();
}

TEST(Token, DropsAtZeroTokensConsumesOtherwise) {
  auto tokens = TokenMap();
  ASSERT_TRUE(tokens->UpdateU64(1, 2).ok());
  TokenPolicy policy(tokens);
  Packet pkt = MakePacket(ReqType::kGet, 20'000, /*user_id=*/1);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(policy.Schedule(view), kPass);
  EXPECT_EQ(policy.Schedule(view), kPass);
  EXPECT_EQ(policy.Schedule(view), kDrop);  // bucket empty
  EXPECT_EQ(tokens->LookupU64(1).value(), 0u);
}

TEST(Token, UnknownUserPasses) {
  auto tokens = TokenMap();
  TokenPolicy policy(tokens);
  Packet pkt = MakePacket(ReqType::kGet, 20'000, /*user_id=*/77);
  EXPECT_EQ(policy.Schedule(PacketView::Of(pkt)), kPass);
}

TEST(Token, DelegatesToNextPolicy) {
  auto tokens = TokenMap();
  ASSERT_TRUE(tokens->UpdateU64(1, 100).ok());
  TokenPolicy policy(tokens, std::make_shared<RoundRobinPolicy>(3));
  Packet pkt = MakePacket(ReqType::kGet, 20'000, 1);
  const PacketView view = PacketView::Of(pkt);
  EXPECT_EQ(policy.Schedule(view), 1u);
  EXPECT_EQ(policy.Schedule(view), 2u);
}

TEST(Token, PerUserBucketsIndependent) {
  auto tokens = TokenMap();
  ASSERT_TRUE(tokens->UpdateU64(1, 1).ok());
  ASSERT_TRUE(tokens->UpdateU64(2, 5).ok());
  TokenPolicy policy(tokens);
  Packet user1 = MakePacket(ReqType::kGet, 20'000, 1);
  Packet user2 = MakePacket(ReqType::kGet, 20'000, 2);
  EXPECT_EQ(policy.Schedule(PacketView::Of(user1)), kPass);
  EXPECT_EQ(policy.Schedule(PacketView::Of(user1)), kDrop);
  EXPECT_EQ(policy.Schedule(PacketView::Of(user2)), kPass);  // unaffected
}

TEST(Token, NativeMatchesBytecode) {
  LoadedPolicy bytecode = LoadBytecode(TokenPolicyAsm());
  auto native_map = TokenMap();
  TokenPolicy native(native_map);
  for (uint32_t user : {1u, 2u}) {
    ASSERT_TRUE(bytecode.maps[0]->UpdateU64(user, 3).ok());
    ASSERT_TRUE(native_map->UpdateU64(user, 3).ok());
  }
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const uint32_t user = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    Packet pkt = MakePacket(ReqType::kGet, 20'000, user);  // user 3 unknown
    const PacketView view = PacketView::Of(pkt);
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view))
        << "i=" << i << " user=" << user;
  }
  // Token counters drained identically.
  EXPECT_EQ(native_map->LookupU64(1).value(),
            bytecode.maps[0]->LookupU64(1).value());
  EXPECT_EQ(native_map->LookupU64(2).value(),
            bytecode.maps[0]->LookupU64(2).value());
}

// --- MICA home --------------------------------------------------------------------

TEST(MicaHome, SteersByKeyHash) {
  MicaHomePolicy policy(8);
  for (uint32_t key_hash : {0u, 7u, 8u, 123'456u}) {
    Packet pkt = MakePacket(ReqType::kGet, 20'000, 1, key_hash);
    EXPECT_EQ(policy.Schedule(PacketView::Of(pkt)), key_hash % 8);
  }
}

TEST(MicaHome, NativeMatchesBytecode) {
  MicaHomePolicy native(8);
  LoadedPolicy bytecode = LoadBytecode(MicaHomePolicyAsm(8));
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    Packet pkt = MakePacket(ReqType::kGet, 20'000, 1,
                            static_cast<uint32_t>(rng.Next()));
    const PacketView view = PacketView::Of(pkt);
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view));
  }
}

// --- LeastLoaded / PowerOfTwo (batched map reads) ---------------------------------

// Variant of LoadBytecode that resolves `.extern_map` slots to a caller
// map, so native and bytecode read the same load registers.
LoadedPolicy LoadBytecodeExtern(const std::string& source,
                                const std::shared_ptr<Map>& extern_map,
                                bpf::ExecEnv env = {}) {
  auto assembled = bpf::Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  auto program = std::make_shared<bpf::Program>();
  program->name = assembled->name;
  program->insns = assembled->insns;
  LoadedPolicy out;
  for (const bpf::MapSlot& slot : assembled->map_slots) {
    auto map = slot.is_extern ? extern_map : CreateMap(slot.spec).value();
    out.maps.push_back(map);
    program->maps.push_back(map);
  }
  EXPECT_TRUE(bpf::Verify(*program, bpf::ProgramContext::kPacket).ok())
      << source;
  out.policy = std::make_unique<BytecodePacketPolicy>(program, std::move(env));
  return out;
}

std::shared_ptr<Map> LoadRegisterMap(uint32_t entries) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = entries;
  spec.name = "load";
  return CreateMap(spec).value();
}

TEST(LeastLoaded, PicksMinimumTiesTowardLowIndex) {
  auto load = LoadRegisterMap(8);
  const uint64_t loads[6] = {3, 1, 4, 1, 5, 9};
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(load->UpdateU64(i, loads[i]).ok());
  }
  LeastLoadedPolicy policy(6, load);
  Packet pkt = MakePacket(ReqType::kGet);
  EXPECT_EQ(policy.Schedule(PacketView::Of(pkt)), 1u);
}

TEST(LeastLoaded, MissingRegisterPasses) {
  auto load = LoadRegisterMap(8);
  ASSERT_TRUE(load->UpdateU64(0, 1).ok());  // registers 1..5 absent
  LeastLoadedPolicy policy(6, load);
  Packet pkt = MakePacket(ReqType::kGet);
  EXPECT_EQ(policy.Schedule(PacketView::Of(pkt)), kPass);
}

// The batched scan (LookupBatch under the hood, in ≤32-key chunks) must
// pick exactly the executor a plain sequential Lookup scan picks, for
// fleet sizes below, at, and above one batch.
TEST(LeastLoaded, BatchedScanMatchesSequentialScan) {
  for (uint32_t n : {1u, 6u, 32u, 40u}) {
    auto load = LoadRegisterMap(2 * n);
    LeastLoadedPolicy policy(n, load);
    Packet pkt = MakePacket(ReqType::kGet);
    const PacketView view = PacketView::Of(pkt);
    Rng rng(n);
    for (int round = 0; round < 50; ++round) {
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_TRUE(load->UpdateU64(i, rng.NextBounded(16)).ok());
      }
      uint32_t best = 0;
      uint64_t best_load = ~uint64_t{0};
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t v = load->LookupU64(i).value();
        if (v < best_load) {
          best_load = v;
          best = i;
        }
      }
      ASSERT_EQ(policy.Schedule(view), best)
          << "n=" << n << " round=" << round;
    }
  }
}

TEST(LeastLoaded, NativeMatchesBytecode) {
  // n=6 exercises the map_lookup_batch asm twin, n=32 a full batch. (The
  // per-key loop fallback for n > 32 exceeds the verifier's exploration
  // budget, as it always has; the native policy chunks any n.)
  for (uint32_t n : {6u, 32u}) {
    auto load = LoadRegisterMap(2 * n);
    LoadedPolicy bytecode =
        LoadBytecodeExtern(LeastLoadedPolicyAsm(n, "/syrup/t/load"), load);
    LeastLoadedPolicy native(n, load);
    Packet pkt = MakePacket(ReqType::kGet);
    const PacketView view = PacketView::Of(pkt);
    Rng rng(7 + n);
    for (int round = 0; round < 60; ++round) {
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_TRUE(load->UpdateU64(i, rng.NextBounded(100)).ok());
      }
      if (round == 30) {
        // Knock a register out: both sides must defer to the default.
        const uint32_t victim = n / 2;
        ASSERT_TRUE(load->Delete(&victim).ok());
      }
      ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view))
          << "n=" << n << " round=" << round;
      if (round == 30) {
        ASSERT_EQ(native.Schedule(view), kPass);
        ASSERT_TRUE(load->UpdateU64(n / 2, 0).ok());
      }
    }
  }
}

TEST(PowerOfTwo, NativeMatchesBytecodeWithSharedRandomness) {
  auto load = LoadRegisterMap(16);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(load->UpdateU64(i, i * 3 % 7).ok());
  }
  LoadedPolicy bytecode = [&load] {
    auto shared_rng = std::make_shared<Rng>(31);
    bpf::ExecEnv env;
    env.random_u32 = [shared_rng]() {
      return static_cast<uint32_t>(shared_rng->Next());
    };
    return LoadBytecodeExtern(PowerOfTwoPolicyAsm(8, "/syrup/t/load"), load,
                              env);
  }();
  auto native_rng = std::make_shared<Rng>(31);
  PowerOfTwoPolicy native(8, load, [native_rng]() {
    return static_cast<uint32_t>(native_rng->Next());
  });
  Packet pkt = MakePacket(ReqType::kGet);
  const PacketView view = PacketView::Of(pkt);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(native.Schedule(view), bytecode.policy->Schedule(view))
        << "diverged at decision " << i;
  }
}

// --- ConstIndex -------------------------------------------------------------------

TEST(ConstIndex, ReturnsConfiguredIndex) {
  ConstIndexPolicy policy(5);
  Packet pkt = MakePacket(ReqType::kGet);
  EXPECT_EQ(policy.Schedule(PacketView::Of(pkt)), 5u);
  LoadedPolicy bytecode = LoadBytecode(ConstIndexPolicyAsm(5));
  EXPECT_EQ(bytecode.policy->Schedule(PacketView::Of(pkt)), 5u);
}

// --- BytecodePacketPolicy instrumentation -------------------------------------------

TEST(BytecodePolicy, TracksInstructionCounts) {
  LoadedPolicy bytecode = LoadBytecode(SitaPolicyAsm(6));
  Packet pkt = MakePacket(ReqType::kGet);
  const PacketView view = PacketView::Of(pkt);
  bytecode.policy->Schedule(view);
  bytecode.policy->Schedule(view);
  EXPECT_EQ(bytecode.policy->invocations(), 2u);
  EXPECT_GT(bytecode.policy->MeanInsnsPerDecision(), 5.0);
  EXPECT_EQ(bytecode.policy->runtime_faults(), 0u);
}


TEST(BytecodePolicy, RuntimeFaultDegradesToPass) {
  // An unverified program with an out-of-bounds read (only reachable when
  // someone bypasses syrupd): the policy wrapper catches the runtime fault
  // and fails open to PASS rather than taking down the datapath.
  auto program = std::make_shared<bpf::Program>();
  program->name = "bad";
  auto assembled = bpf::Assemble("ldxdw r0, [r1+100]\nexit\n");
  program->insns = assembled->insns;
  BytecodePacketPolicy policy(program, bpf::ExecEnv{});
  Packet pkt = MakePacket(ReqType::kGet);
  EXPECT_EQ(policy.Schedule(PacketView::Of(pkt)), kPass);
  EXPECT_EQ(policy.runtime_faults(), 1u);
  EXPECT_EQ(policy.invocations(), 0u);  // faults don't count as decisions
}

}  // namespace
}  // namespace syrup
