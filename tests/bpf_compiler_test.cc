// Tests for the pre-decoded execution tier (src/bpf/compiler.h).
//
// The contract under test: for any verifier-accepted program, the compiled
// executor (plain and paranoid) produces exactly the interpreter's r0, map
// side effects, and helper/tail-call counts — only insns_executed may
// differ (folding shrinks it). Unit tests pin the individual optimizations;
// the differential fuzz and the builtin-policy sweep enforce the
// equivalence wholesale; the experiment test extends it to end-to-end
// simulation results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/apps/experiments.h"
#include "src/bpf/assembler.h"
#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/jit.h"
#include "src/bpf/verifier.h"
#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/map/prog_array.h"
#include "src/net/packet.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

using bpf::CompileOptions;
using bpf::CompiledExecutor;
using bpf::CompiledProgram;
using bpf::COp;
using bpf::ExecEnv;
using bpf::ExecMode;
using bpf::Interpreter;
using bpf::Program;
using bpf::ProgramContext;

struct Loaded {
  Program prog;
  ProgramContext context = ProgramContext::kPacket;
};

// Assembles `source` and materializes its maps. Extern maps (tests have no
// registry) are created as u32 -> u64 arrays of 8 slots.
Loaded Load(std::string_view source) {
  auto assembled = bpf::Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  Loaded loaded;
  loaded.context = assembled->context;
  loaded.prog.name = assembled->name;
  loaded.prog.insns = assembled->insns;
  for (const bpf::MapSlot& slot : assembled->map_slots) {
    MapSpec spec = slot.spec;
    if (slot.is_extern) {
      spec = MapSpec{};
      spec.type = MapType::kArray;
      spec.max_entries = 8;
      spec.name = slot.name;
    }
    loaded.prog.maps.push_back(CreateMap(spec).value());
  }
  return loaded;
}

ExecEnv TestEnv() {
  ExecEnv env;
  env.random_u32 = []() { return 4u; };
  env.ktime_ns = []() { return 123'456u; };
  return env;
}

CompiledProgram CompileOrDie(const Program& prog, ProgramContext context,
                             CompileOptions options = {}) {
  auto compiled = bpf::Compile(prog, context, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  return *std::move(compiled);
}

uint64_t RunCompiledScalar(const CompiledProgram& prog, uint64_t a1 = 0,
                           uint64_t a2 = 0) {
  CompiledExecutor exec(TestEnv());
  auto result = exec.Run(prog, a1, a2, /*args_are_packet=*/false);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->r0;
}

uint64_t RunInterpScalar(const Program& prog, uint64_t a1 = 0,
                         uint64_t a2 = 0) {
  Interpreter interp(TestEnv());
  auto result = interp.Run(prog, a1, a2, /*args_are_packet=*/false);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->r0;
}

bool HasOp(const CompiledProgram& prog, COp op) {
  for (const bpf::CInsn& insn : prog.code) {
    if (insn.op == op) return true;
  }
  return false;
}

// --- unit: translation shape --------------------------------------------------

TEST(Compiler, ExecModeNames) {
  EXPECT_EQ(bpf::ExecModeName(ExecMode::kInterpret), "interpret");
  EXPECT_EQ(bpf::ExecModeName(ExecMode::kCompiled), "compiled");
  EXPECT_EQ(bpf::ExecModeName(ExecMode::kCompiledParanoid),
            "compiled-paranoid");
  EXPECT_EQ(bpf::ExecModeName(ExecMode::kNative), "native");
  for (ExecMode mode : {ExecMode::kInterpret, ExecMode::kCompiled,
                        ExecMode::kCompiledParanoid, ExecMode::kNative}) {
    EXPECT_EQ(bpf::ExecModeFromName(bpf::ExecModeName(mode)), mode);
  }
  EXPECT_EQ(bpf::ExecModeFromName("warp-speed"), std::nullopt);
}

TEST(Compiler, EffectiveExecModeReportsActualTier) {
  EXPECT_EQ(bpf::EffectiveExecMode(nullptr), ExecMode::kInterpret);
  Loaded l = Load("mov r0, 1\nexit\n");
  CompiledProgram plain = CompileOrDie(l.prog, ProgramContext::kThread);
  EXPECT_EQ(bpf::EffectiveExecMode(&plain), ExecMode::kCompiled);
  CompileOptions paranoid;
  paranoid.paranoid = true;
  CompiledProgram chk = CompileOrDie(l.prog, ProgramContext::kThread, paranoid);
  EXPECT_EQ(bpf::EffectiveExecMode(&chk), ExecMode::kCompiledParanoid);
  auto native = bpf::JitCompile(plain);
  if (bpf::JitAvailable()) {
    ASSERT_TRUE(native.ok()) << native.status();
    plain.native = std::move(native).value();
    EXPECT_EQ(bpf::EffectiveExecMode(&plain), ExecMode::kNative);
  } else {
    // Requested native, nothing published: still the compiled tier.
    EXPECT_FALSE(native.ok());
    EXPECT_EQ(bpf::EffectiveExecMode(&plain), ExecMode::kCompiled);
  }
}

TEST(Compiler, StatsAccountForSentinel) {
  Loaded l = Load("mov r0, 1\nexit\n");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  EXPECT_EQ(c.stats.input_insns, l.prog.insns.size());
  // The code vector carries one trailing kExit sentinel beyond the counted
  // output instructions.
  EXPECT_EQ(c.code.size(), c.stats.output_insns + 1);
  EXPECT_EQ(c.code.back().op, COp::kExit);
}

TEST(Compiler, FoldsConstantAluChains) {
  Loaded l = Load(R"(
    mov r3, 21
    add r3, 21
    mov r0, r3
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  EXPECT_GE(c.stats.folded_alu, 1u);
  EXPECT_LT(c.stats.output_insns, c.stats.input_insns);
  EXPECT_EQ(RunCompiledScalar(c), 42u);
  EXPECT_EQ(RunInterpScalar(l.prog), 42u);
}

TEST(Compiler, StrengthReducesPow2MulDivMod) {
  Loaded l = Load(R"(
    mov r0, r1
    mul r0, 8
    mov r4, r1
    div r4, 4
    add r0, r4
    mov r5, r1
    mod r5, 16
    add r0, r5
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  EXPECT_GE(c.stats.strength_reduced, 3u);
  EXPECT_FALSE(HasOp(c, COp::kMulImm));
  EXPECT_FALSE(HasOp(c, COp::kDivImm));
  EXPECT_FALSE(HasOp(c, COp::kModImm));
  for (uint64_t arg : {0ull, 1ull, 5ull, 255ull, (1ull << 40) + 3}) {
    EXPECT_EQ(RunCompiledScalar(c, arg), RunInterpScalar(l.prog, arg))
        << "arg=" << arg;
  }
}

TEST(Compiler, FoldsDecidedBranches) {
  Loaded taken = Load(R"(
    mov r3, 5
    jeq r3, 5, yes
    mov r0, 1
    exit
  yes:
    mov r0, 2
    exit
  )");
  CompiledProgram c = CompileOrDie(taken.prog, ProgramContext::kThread);
  EXPECT_EQ(RunCompiledScalar(c), 2u);
  EXPECT_EQ(RunInterpScalar(taken.prog), 2u);
  EXPECT_GT(c.stats.strength_reduced + c.stats.eliminated_insns, 0u);

  Loaded untaken = Load(R"(
    mov r3, 5
    jne r3, 5, yes
    mov r0, 1
    exit
  yes:
    mov r0, 2
    exit
  )");
  CompiledProgram u = CompileOrDie(untaken.prog, ProgramContext::kThread);
  EXPECT_EQ(RunCompiledScalar(u), 1u);
  EXPECT_EQ(RunInterpScalar(untaken.prog), 1u);
  EXPECT_GE(u.stats.eliminated_insns, 1u);
}

TEST(Compiler, FactsEliminateRangeDecidedBranches) {
  // The constant lattice cannot see through the load, but the verifier's
  // range analysis proves `jgt r4, 40, dead` never taken (r4 ≤ 15), so the
  // branch and its arm vanish from the compiled form via AnalysisFacts.
  Loaded l = Load(R"(
    mov r3, r1
    add r3, 8
    jgt r3, r2, out
    ldxb r4, [r1+0]
    and r4, 15
    jgt r4, 40, dead
    mov r0, r4
    exit
  dead:
    mov r0, 77
    exit
  out:
    mov r0, PASS
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kPacket);
  EXPECT_GE(c.stats.facts_decided_branches, 1u);
  EXPECT_GE(c.stats.facts_dead_insns, 2u);  // the `dead:` arm

  // Same compile with facts suppressed keeps the branch.
  bpf::AnalysisFacts no_facts;
  CompileOptions options;
  options.assume_verified = true;
  options.facts = &no_facts;
  CompiledProgram base = CompileOrDie(l.prog, ProgramContext::kPacket,
                                      options);
  EXPECT_EQ(base.stats.facts_decided_branches, 0u);
  EXPECT_LT(c.stats.output_insns, base.stats.output_insns);

  Packet pkt;
  pkt.SetHeader(ReqType::kGet, 1, 0xabcdef01u, 7, 0);
  const auto start = reinterpret_cast<uint64_t>(pkt.wire.data());
  const auto end = start + pkt.wire.size();
  Interpreter interp(TestEnv());
  CompiledExecutor exec(TestEnv());
  const uint64_t want = interp.Run(l.prog, start, end, true)->r0;
  EXPECT_EQ(exec.Run(c, start, end, true)->r0, want);
  EXPECT_EQ(exec.Run(base, start, end, true)->r0, want);
}

TEST(Compiler, VarHeaderElidesChecksAndMatchesInterpreter) {
  // The acceptance-bar policy: variable-offset packet parse, compiled with
  // its memory checks elided, same result in every tier.
  Loaded l = Load(VarHeaderPolicyAsm(4));
  CompiledProgram plain = CompileOrDie(l.prog, ProgramContext::kPacket);
  EXPECT_GE(plain.stats.elided_checks, 2u);  // both loads unchecked
  EXPECT_FALSE(HasOp(plain, COp::kLdxBChk));
  EXPECT_FALSE(HasOp(plain, COp::kLdxWChk));

  CompileOptions paranoid;
  paranoid.paranoid = true;
  CompiledProgram chk = CompileOrDie(l.prog, ProgramContext::kPacket,
                                     paranoid);
  Interpreter interp(TestEnv());
  CompiledExecutor exec(TestEnv());
  for (uint32_t hash : {0u, 3u, 0x1234u, 0xdeadbeefu}) {
    Packet pkt;
    pkt.SetHeader(ReqType::kGet, 1, hash, hash, 0);
    const auto start = reinterpret_cast<uint64_t>(pkt.wire.data());
    const auto end = start + pkt.wire.size();
    const uint64_t want = interp.Run(l.prog, start, end, true)->r0;
    EXPECT_EQ(exec.Run(plain, start, end, true)->r0, want) << hash;
    EXPECT_EQ(exec.Run(chk, start, end, true)->r0, want) << hash;
  }
}

TEST(Compiler, EliminatesDeadConstantMoves) {
  Loaded l = Load(R"(
    mov r3, 99
    mov r3, r1
    mov r0, r3
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  EXPECT_GE(c.stats.eliminated_insns, 1u);
  EXPECT_EQ(RunCompiledScalar(c, 7), 7u);
}

TEST(Compiler, ElidesMemoryChecksUnlessParanoid) {
  Loaded l = Load(R"(
    mov r3, r1
    add r3, 8
    jgt r3, r2, pass
    ldxw r4, [r1+0]
    mov r0, r4
    exit
  pass:
    mov r0, PASS
    exit
  )");
  CompiledProgram plain = CompileOrDie(l.prog, ProgramContext::kPacket);
  EXPECT_GE(plain.stats.elided_checks, 1u);
  EXPECT_TRUE(HasOp(plain, COp::kLdxW));
  EXPECT_FALSE(HasOp(plain, COp::kLdxWChk));
  EXPECT_FALSE(plain.paranoid);

  CompileOptions paranoid;
  paranoid.paranoid = true;
  CompiledProgram chk = CompileOrDie(l.prog, ProgramContext::kPacket,
                                     paranoid);
  EXPECT_EQ(chk.stats.elided_checks, 0u);
  EXPECT_TRUE(HasOp(chk, COp::kLdxWChk));
  EXPECT_TRUE(chk.paranoid);

  Packet pkt;
  pkt.SetHeader(ReqType::kGet, 1, 2, 3, 4);
  const auto start = reinterpret_cast<uint64_t>(pkt.wire.data());
  const auto end = start + pkt.wire.size();
  Interpreter interp(TestEnv());
  const uint64_t want = interp.Run(l.prog, start, end, true)->r0;
  CompiledExecutor exec(TestEnv());
  EXPECT_EQ(exec.Run(plain, start, end, true)->r0, want);
  EXPECT_EQ(exec.Run(chk, start, end, true)->r0, want);
}

TEST(Compiler, RefusesUnverifiableProgramByDefault) {
  // Unchecked packet load: the verifier rejects it, so Compile must too —
  // eliding checks for it would be unsound.
  Loaded l = Load("ldxw r0, [r1+0]\nexit\n");
  auto compiled = bpf::Compile(l.prog, ProgramContext::kPacket);
  EXPECT_FALSE(compiled.ok());
  // An explicitly pre-verified caller may skip the internal pass (syrupd's
  // deploy path); then translation succeeds mechanically.
  CompileOptions options;
  options.assume_verified = true;
  options.paranoid = true;  // keep runtime checks for the unproven access
  EXPECT_TRUE(bpf::Compile(l.prog, ProgramContext::kPacket, options).ok());
}

TEST(Compiler, ResolvesMapsToDirectPointers) {
  Loaded l = Load(RoundRobinPolicyAsm(4));
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kPacket);
  bool found = false;
  for (const bpf::CInsn& insn : c.code) {
    if (insn.op == COp::kLdMapPtr) {
      EXPECT_EQ(reinterpret_cast<Map*>(insn.imm), l.prog.maps[0].get());
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(c.maps.size(), l.prog.maps.size());
}

// --- unit: tail calls ---------------------------------------------------------

TEST(Compiler, TailCallResolvesThroughCompiledCache) {
  Loaded target = Load("mov r0, 77\nexit\n");
  auto compiled_target = CompileOrDie(target.prog, ProgramContext::kThread);

  Loaded root = Load(R"(
    .map progs prog_array 4 8 4
    mov r1, 0
    ldmapfd r2, progs
    mov r3, 2
    call tail_call
    mov r0, 11    ; only reached when the slot is empty
    exit
  )");
  CompiledProgram compiled_root =
      CompileOrDie(root.prog, ProgramContext::kThread);

  ExecEnv env = TestEnv();
  env.resolve_compiled = [&](uint64_t id) -> const CompiledProgram* {
    return id == 500 ? &compiled_target : nullptr;
  };
  CompiledExecutor exec(env);

  // Empty slot: falls through like the interpreter.
  auto miss = exec.Run(compiled_root, 0, 0, false);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->r0, 11u);
  EXPECT_EQ(miss->tail_calls, 0u);

  auto* prog_array = static_cast<ProgArrayMap*>(root.prog.maps[0].get());
  uint32_t key = 2;
  uint64_t prog_id = 500;
  ASSERT_TRUE(prog_array->Update(&key, &prog_id, UpdateFlag::kAny).ok());
  auto hit = exec.Run(compiled_root, 0, 0, false);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->r0, 77u);
  EXPECT_EQ(hit->tail_calls, 1u);
  EXPECT_EQ(hit->helper_calls, 1u);  // tail calls count as helper calls

  // No resolver at all: a compiled tail call degrades to a miss.
  CompiledExecutor bare(TestEnv());
  auto unresolved = bare.Run(compiled_root, 0, 0, false);
  ASSERT_TRUE(unresolved.ok());
  EXPECT_EQ(unresolved->r0, 11u);
}

TEST(Compiler, TailCallIntoParanoidProgramRevalidates) {
  // A non-paranoid root chaining into a paranoid target must give the
  // target its runtime regions even though the root never built any.
  Loaded target = Load(R"(
    .map state array 4 8 1
    mov r1, 0
    stxw [r10-4], r1
    ldmapfd r1, state
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jne r0, 0, have
    mov r0, 5
    exit
  have:
    ldxdw r0, [r0+0]
    add r0, 1
    exit
  )");
  CompileOptions paranoid;
  paranoid.paranoid = true;
  auto compiled_target =
      CompileOrDie(target.prog, ProgramContext::kThread, paranoid);

  Loaded root = Load(R"(
    .map progs prog_array 4 8 1
    mov r1, 0
    ldmapfd r2, progs
    mov r3, 0
    call tail_call
    mov r0, 0
    exit
  )");
  auto compiled_root = CompileOrDie(root.prog, ProgramContext::kThread);
  auto* prog_array = static_cast<ProgArrayMap*>(root.prog.maps[0].get());
  uint32_t key = 0;
  uint64_t prog_id = 9;
  ASSERT_TRUE(prog_array->Update(&key, &prog_id, UpdateFlag::kAny).ok());

  ExecEnv env = TestEnv();
  env.resolve_compiled = [&](uint64_t id) -> const CompiledProgram* {
    return id == 9 ? &compiled_target : nullptr;
  };
  CompiledExecutor exec(env);
  auto result = exec.Run(compiled_root, 0, 0, false);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->r0, 1u);  // zero-init array value + 1
}

// --- differential: builtin policies across all three modes --------------------

using MapImage = std::map<std::vector<uint8_t>, std::vector<uint8_t>>;

MapImage DumpMap(Map& m) {
  MapImage image;
  const uint32_t key_size = m.spec().key_size;
  const uint32_t value_size = m.spec().value_size;
  m.Visit([&](const void* key, void* value) {
    const auto* k = static_cast<const uint8_t*>(key);
    const auto* v = static_cast<const uint8_t*>(value);
    image[std::vector<uint8_t>(k, k + key_size)] =
        std::vector<uint8_t>(v, v + value_size);
  });
  return image;
}

// Deterministic pre-population so lookups exercise hit, miss, zero and
// non-zero token paths identically in every mode.
void Prepopulate(Map& m) {
  if (m.spec().type == MapType::kProgArray) return;
  if (m.spec().key_size != 4 || m.spec().value_size != 8) return;
  if (m.spec().type == MapType::kArray) {
    for (uint32_t i = 0; i < m.spec().max_entries; ++i) {
      EXPECT_TRUE(m.UpdateU64(i, (i % 2) ? 1 : 2).ok());
    }
  } else {
    for (uint32_t k = 1; k <= 4; ++k) {
      EXPECT_TRUE(m.UpdateU64(k, (k % 2) ? 0 : 50).ok());
    }
  }
}

struct ModeRun {
  std::vector<uint64_t> decisions;
  uint64_t helper_calls = 0;
  uint64_t tail_calls = 0;
  uint64_t insns = 0;
  std::vector<MapImage> maps;
  // True when native mode actually published machine code (as opposed to
  // transparently falling back to the compiled tier).
  bool native_engaged = false;
};

ModeRun RunVariant(const std::string& source, ExecMode mode, uint64_t seed,
                   int iters) {
  Loaded l = Load(source);
  for (auto& m : l.prog.maps) Prepopulate(*m);

  auto helper_rng = std::make_shared<Rng>(seed ^ 0x9e3779b9ULL);
  auto ticks = std::make_shared<uint64_t>(0);
  ExecEnv env;
  env.random_u32 = [helper_rng]() {
    return static_cast<uint32_t>(helper_rng->Next());
  };
  env.ktime_ns = [ticks]() { return (*ticks += 100); };

  Interpreter interp(env);
  CompiledExecutor exec(env);
  CompiledProgram compiled;
  bool native_engaged = false;
  if (mode != ExecMode::kInterpret) {
    CompileOptions options;
    options.paranoid = mode == ExecMode::kCompiledParanoid;
    compiled = CompileOrDie(l.prog, l.context, options);
    if (mode == ExecMode::kNative) {
      // JIT failure (disabled, unsupported host/program) is the documented
      // transparent fallback to the compiled tier, same as syrupd's deploy.
      auto native = bpf::JitCompile(compiled);
      if (native.ok()) {
        compiled.native = std::move(native).value();
        native_engaged = true;
      }
    }
  }

  ModeRun run;
  Rng input_rng(seed);  // identical input stream in every mode
  for (int i = 0; i < iters; ++i) {
    uint64_t arg1 = 0;
    uint64_t arg2 = 0;
    Packet pkt;
    if (l.context == ProgramContext::kPacket) {
      const auto type =
          input_rng.NextBounded(2) == 0 ? ReqType::kGet : ReqType::kScan;
      pkt.SetHeader(type, 1 + static_cast<uint32_t>(input_rng.NextBounded(5)),
                    static_cast<uint32_t>(input_rng.Next()),
                    static_cast<uint64_t>(i), static_cast<Time>(i));
      arg1 = reinterpret_cast<uint64_t>(pkt.wire.data());
      arg2 = arg1 + pkt.wire.size();
    } else {
      arg1 = input_rng.NextBounded(12);  // tid: mixes map hits and misses
    }
    const bool is_packet = l.context == ProgramContext::kPacket;
    auto result = mode == ExecMode::kInterpret
                      ? interp.Run(l.prog, arg1, arg2, is_packet)
                      : exec.Run(compiled, arg1, arg2, is_packet);
    EXPECT_TRUE(result.ok()) << result.status();
    if (!result.ok()) break;
    run.decisions.push_back(result->r0);
    run.helper_calls += result->helper_calls;
    run.tail_calls += result->tail_calls;
    run.insns += result->insns_executed;
  }
  for (auto& m : l.prog.maps) run.maps.push_back(DumpMap(*m));
  run.native_engaged = native_engaged;
  return run;
}

struct BuiltinCase {
  const char* label;
  std::string source;
};

class BuiltinDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BuiltinDifferentialTest, AllModesAgreeOnDecisionsAndSideEffects) {
  const uint64_t seed = GetParam();
  const BuiltinCase cases[] = {
      {"round_robin", RoundRobinPolicyAsm(4)},
      {"hash", HashPolicyAsm(4)},
      {"scan_avoid", ScanAvoidPolicyAsm(4)},
      {"sita", SitaPolicyAsm(4)},
      {"token", TokenPolicyAsm()},
      {"mica_home", MicaHomePolicyAsm(4)},
      {"var_header", VarHeaderPolicyAsm(4)},
      {"least_loaded", LeastLoadedPolicyAsm(4, "/pins/load")},
      {"power_of_two", PowerOfTwoPolicyAsm(4, "/pins/load")},
      {"get_priority", GetPriorityThreadPolicyAsm("/pins/thread_types")},
  };
  constexpr int kIters = 200;
  for (const BuiltinCase& c : cases) {
    ModeRun interp = RunVariant(c.source, ExecMode::kInterpret, seed, kIters);
    ModeRun compiled = RunVariant(c.source, ExecMode::kCompiled, seed, kIters);
    ModeRun paranoid =
        RunVariant(c.source, ExecMode::kCompiledParanoid, seed, kIters);
    ModeRun native = RunVariant(c.source, ExecMode::kNative, seed, kIters);
    EXPECT_EQ(interp.decisions, compiled.decisions) << c.label;
    EXPECT_EQ(interp.decisions, paranoid.decisions) << c.label;
    EXPECT_EQ(interp.decisions, native.decisions) << c.label;
    EXPECT_EQ(interp.helper_calls, compiled.helper_calls) << c.label;
    EXPECT_EQ(interp.helper_calls, paranoid.helper_calls) << c.label;
    EXPECT_EQ(interp.helper_calls, native.helper_calls) << c.label;
    EXPECT_EQ(interp.maps, compiled.maps) << c.label;
    EXPECT_EQ(interp.maps, paranoid.maps) << c.label;
    EXPECT_EQ(interp.maps, native.maps) << c.label;
    if (bpf::JitAvailable()) {
      // Every builtin policy is JIT-able (no tail calls), and the per-block
      // instruction accounting must agree with the compiled tier's
      // per-instruction count exactly.
      EXPECT_TRUE(native.native_engaged) << c.label;
      EXPECT_EQ(native.insns, compiled.insns) << c.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuiltinDifferentialTest,
                         testing::Values(1, 17, 4242));

// --- differential: random verifier-accepted programs --------------------------

bpf::Insn RandomInsn(Rng& rng, size_t prog_len) {
  using bpf::Op;
  static constexpr Op kOps[] = {
      Op::kAddReg, Op::kAddImm, Op::kSubReg, Op::kSubImm, Op::kMulImm,
      Op::kDivImm, Op::kModImm, Op::kOrImm, Op::kAndImm, Op::kLshImm,
      Op::kRshImm, Op::kArshImm, Op::kNeg, Op::kMovReg, Op::kMovImm,
      Op::kMov32Imm, Op::kBe16, Op::kBe64, Op::kLdxB, Op::kLdxW, Op::kLdxDW,
      Op::kStxB, Op::kStxDW, Op::kStW, Op::kJa, Op::kJeqImm, Op::kJneImm,
      Op::kJgtReg, Op::kJgeReg, Op::kJltImm, Op::kJsgtImm, Op::kJsetImm,
      Op::kCall, Op::kExit};
  bpf::Insn insn;
  insn.op = kOps[rng.NextBounded(sizeof(kOps) / sizeof(kOps[0]))];
  insn.dst = static_cast<uint8_t>(rng.NextBounded(11));
  insn.src = static_cast<uint8_t>(rng.NextBounded(11));
  insn.off =
      static_cast<int16_t>(rng.NextBounded(2 * prog_len) - prog_len);
  if (insn.op == bpf::Op::kCall) {
    insn.imm = static_cast<int64_t>(rng.NextBounded(8));
  } else {
    insn.imm = static_cast<int64_t>(rng.NextBounded(64)) - 16;
  }
  return insn;
}

class CompilerFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CompilerFuzzTest, CompiledMatchesInterpreterOnVerifiedPrograms) {
  Rng rng(GetParam());
  int verified = 0;
  // The generator is crude; keep drawing until enough programs pass the
  // verifier (bounded so a pathological seed cannot hang the test).
  for (int trial = 0; trial < 50'000 && verified < 40; ++trial) {
    const size_t length = 2 + rng.NextBounded(14);
    Program prog;
    prog.name = "fuzz";
    for (size_t i = 0; i + 1 < length; ++i) {
      prog.insns.push_back(RandomInsn(rng, length));
    }
    prog.insns.push_back(bpf::Insn{bpf::Op::kExit, 0, 0, 0, 0});

    bpf::VerifierOptions options;
    options.max_visited_insns = 20'000;
    if (!bpf::Verify(prog, ProgramContext::kPacket, options).ok()) {
      continue;
    }
    ++verified;

    CompileOptions assume;
    assume.assume_verified = true;
    auto plain = bpf::Compile(prog, ProgramContext::kPacket, assume);
    ASSERT_TRUE(plain.ok()) << plain.status();
    CompileOptions assume_paranoid = assume;
    assume_paranoid.paranoid = true;
    auto chk = bpf::Compile(prog, ProgramContext::kPacket, assume_paranoid);
    ASSERT_TRUE(chk.ok()) << chk.status();
    // Native tier. Random programs may draw the tail-call helper, which the
    // JIT rejects; that exercises the documented fallback (native == plain).
    CompiledProgram native_prog = *plain;
    auto jit = bpf::JitCompile(native_prog);
    if (jit.ok()) native_prog.native = std::move(jit).value();

    Packet pkt;
    pkt.SetHeader(ReqType::kGet, 1, 2, 3, 4);
    const auto start = reinterpret_cast<uint64_t>(pkt.wire.data());
    const auto end = start + pkt.wire.size();

    // Three identical env instances: the helper RNG streams must line up.
    auto run = [&](auto& engine, const auto& program) {
      return engine.Run(program, start, end, /*args_are_packet=*/true);
    };
    Rng rng_a(trial), rng_b(trial), rng_c(trial), rng_d(trial);
    ExecEnv env_a, env_b, env_c, env_d;
    env_a.random_u32 = [&]() { return static_cast<uint32_t>(rng_a.Next()); };
    env_b.random_u32 = [&]() { return static_cast<uint32_t>(rng_b.Next()); };
    env_c.random_u32 = [&]() { return static_cast<uint32_t>(rng_c.Next()); };
    env_d.random_u32 = [&]() { return static_cast<uint32_t>(rng_d.Next()); };
    env_a.ktime_ns = env_b.ktime_ns = env_c.ktime_ns = env_d.ktime_ns = []() {
      return 99u;
    };
    Interpreter interp(env_a);
    CompiledExecutor exec_plain(env_b);
    CompiledExecutor exec_chk(env_c);
    CompiledExecutor exec_native(env_d);

    auto want = run(interp, prog);
    ASSERT_TRUE(want.ok()) << want.status();
    auto got_plain = run(exec_plain, *plain);
    ASSERT_TRUE(got_plain.ok()) << got_plain.status();
    auto got_chk = run(exec_chk, *chk);
    ASSERT_TRUE(got_chk.ok()) << got_chk.status();
    auto got_native = run(exec_native, native_prog);
    ASSERT_TRUE(got_native.ok()) << got_native.status();

    EXPECT_EQ(got_plain->r0, want->r0) << "trial " << trial;
    EXPECT_EQ(got_chk->r0, want->r0) << "trial " << trial;
    EXPECT_EQ(got_native->r0, want->r0) << "trial " << trial;
    EXPECT_EQ(got_plain->helper_calls, want->helper_calls);
    EXPECT_EQ(got_chk->helper_calls, want->helper_calls);
    EXPECT_EQ(got_native->helper_calls, want->helper_calls);
    EXPECT_EQ(got_plain->tail_calls, want->tail_calls);
    EXPECT_EQ(got_chk->tail_calls, want->tail_calls);
    if (native_prog.native != nullptr) {
      EXPECT_EQ(got_native->insns_executed, got_plain->insns_executed)
          << "trial " << trial;
    }
  }
  EXPECT_GT(verified, 0);
}

// Same seeds as the interpreter's VerifierFuzzTest: each is known to
// produce verifier-accepted programs from this generator.
INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzzTest,
                         testing::Values(11, 22, 33, 44, 55, 66));

// --- unit: native (JIT) tier --------------------------------------------------

TEST(Jit, PublishesCodeAndStats) {
  if (!bpf::JitAvailable()) GTEST_SKIP() << "JIT unsupported on this host";
  Loaded l = Load(R"(
    mov r0, r1
    mul r0, 3
    add r0, 7
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  const size_t arena_before = bpf::JitArenaBytesUsed();
  auto native = bpf::JitCompile(c);
  ASSERT_TRUE(native.ok()) << native.status();
  EXPECT_GT((*native)->stats().code_bytes, 0u);
  EXPECT_GT((*native)->stats().stencils, 0u);
  EXPECT_GT(bpf::JitArenaBytesUsed(), arena_before);
  c.native = std::move(native).value();
  for (uint64_t arg : {0ull, 1ull, 13ull, (1ull << 50) + 9}) {
    EXPECT_EQ(RunCompiledScalar(c, arg), arg * 3 + 7) << "arg=" << arg;
  }
}

TEST(Jit, RejectsTailCallPrograms) {
  Loaded l = Load(R"(
    .map progs prog_array 4 8 1
    mov r1, 0
    ldmapfd r2, progs
    mov r3, 0
    call tail_call
    mov r0, 0
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  auto native = bpf::JitCompile(c);
  EXPECT_FALSE(native.ok());
  // Fallback contract: the artifact still runs on the compiled tier.
  EXPECT_EQ(c.native, nullptr);
  EXPECT_EQ(RunCompiledScalar(c), RunInterpScalar(l.prog));
}

TEST(Jit, RejectsParanoidPrograms) {
  Loaded l = Load("mov r0, 1\nexit\n");
  CompileOptions paranoid;
  paranoid.paranoid = true;
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread, paranoid);
  EXPECT_FALSE(bpf::JitCompile(c).ok());
}

TEST(Jit, DisableEnvForcesCompiledFallback) {
  // SYRUP_JIT_DISABLE is the portable way to exercise the non-x86-64 path:
  // JitCompile refuses, the caller keeps the compiled artifact, and results
  // are unchanged.
  Loaded l = Load(R"(
    mov r0, r1
    and r0, 255
    exit
  )");
  CompiledProgram c = CompileOrDie(l.prog, ProgramContext::kThread);
  setenv("SYRUP_JIT_DISABLE", "1", 1);
  auto disabled = bpf::JitCompile(c);
  unsetenv("SYRUP_JIT_DISABLE");
  EXPECT_FALSE(disabled.ok());
  EXPECT_EQ(bpf::EffectiveExecMode(&c), ExecMode::kCompiled);
  const uint64_t compiled_r0 = RunCompiledScalar(c, 0x1234);
  auto native = bpf::JitCompile(c);
  if (native.ok()) {
    c.native = std::move(native).value();
    EXPECT_EQ(RunCompiledScalar(c, 0x1234), compiled_r0);
  }
}

// --- end to end: execution tier must not change simulation results ------------

TEST(Compiler, ExperimentResultsIdenticalAcrossExecModes) {
  RocksDbExperimentConfig config;
  config.socket_policy = SocketPolicyKind::kRoundRobin;
  config.thread_sched = ThreadSchedKind::kGhostGetPriority;
  config.use_bytecode = true;
  config.num_threads = 4;
  config.num_cores = 4;
  config.load_rps = 30'000;
  config.get_fraction = 0.8;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;

  config.exec_mode = ExecMode::kInterpret;
  const RocksDbResult interp = RunRocksDbExperiment(config);
  config.exec_mode = ExecMode::kCompiled;
  const RocksDbResult compiled = RunRocksDbExperiment(config);
  config.exec_mode = ExecMode::kCompiledParanoid;
  const RocksDbResult paranoid = RunRocksDbExperiment(config);
  config.exec_mode = ExecMode::kNative;
  const RocksDbResult native = RunRocksDbExperiment(config);

  EXPECT_GT(interp.throughput_rps, 0.0);
  // Same seed, same decisions, same event sequence: results must match to
  // the bit, not just statistically.
  EXPECT_EQ(interp.throughput_rps, compiled.throughput_rps);
  EXPECT_EQ(interp.p50_us, compiled.p50_us);
  EXPECT_EQ(interp.p99_us, compiled.p99_us);
  EXPECT_EQ(interp.drop_fraction, compiled.drop_fraction);
  EXPECT_EQ(compiled.throughput_rps, paranoid.throughput_rps);
  EXPECT_EQ(compiled.p50_us, paranoid.p50_us);
  EXPECT_EQ(compiled.p99_us, paranoid.p99_us);
  EXPECT_EQ(compiled.drop_fraction, paranoid.drop_fraction);
  // Native either JITs (x86-64) or transparently falls back to compiled —
  // the simulation outcome must be bit-identical either way.
  EXPECT_EQ(compiled.throughput_rps, native.throughput_rps);
  EXPECT_EQ(compiled.p50_us, native.p50_us);
  EXPECT_EQ(compiled.p99_us, native.p99_us);
  EXPECT_EQ(compiled.drop_fraction, native.drop_fraction);
}

}  // namespace
}  // namespace syrup
