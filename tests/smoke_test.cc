#include <gtest/gtest.h>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

TEST(Smoke, RocksDbVanillaLowLoad) {
  RocksDbExperimentConfig config;
  config.socket_policy = SocketPolicyKind::kVanilla;
  config.load_rps = 50'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  const RocksDbResult result = RunRocksDbExperiment(config);
  EXPECT_GT(result.throughput_rps, 40'000);
  EXPECT_GT(result.p99_us, 10);
  EXPECT_LT(result.p50_us, 1000);
}

}  // namespace
}  // namespace syrup
