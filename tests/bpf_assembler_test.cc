#include <gtest/gtest.h>

#include "src/bpf/assembler.h"
#include "src/bpf/insn.h"

namespace syrup::bpf {
namespace {

TEST(Assembler, MinimalProgram) {
  auto result = Assemble(R"(
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->insns.size(), 2u);
  EXPECT_EQ(result->insns[0].op, Op::kMovImm);
  EXPECT_EQ(result->insns[0].imm, 0);
  EXPECT_EQ(result->insns[1].op, Op::kExit);
  EXPECT_EQ(result->name, "anonymous");
  EXPECT_EQ(result->context, ProgramContext::kPacket);
}

TEST(Assembler, Directives) {
  auto result = Assemble(R"(
    .name my_policy
    .ctx thread
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->name, "my_policy");
  EXPECT_EQ(result->context, ProgramContext::kThread);
}

TEST(Assembler, RegisterVsImmediateFlavors) {
  auto result = Assemble(R"(
    mov r1, 5
    mov r2, r1
    add r1, r2
    add r1, -3
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns[0].op, Op::kMovImm);
  EXPECT_EQ(result->insns[1].op, Op::kMovReg);
  EXPECT_EQ(result->insns[2].op, Op::kAddReg);
  EXPECT_EQ(result->insns[3].op, Op::kAddImm);
  EXPECT_EQ(result->insns[3].imm, -3);
}

TEST(Assembler, HexAndSymbolicImmediates) {
  auto result = Assemble(R"(
    mov r1, 0xFF
    mov r0, PASS
    mov r2, DROP
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns[0].imm, 0xFF);
  EXPECT_EQ(static_cast<uint32_t>(result->insns[1].imm), 0xFFFFFFFFu);
  EXPECT_EQ(static_cast<uint32_t>(result->insns[2].imm), 0xFFFFFFFEu);
}

TEST(Assembler, MemoryOperands) {
  auto result = Assemble(R"(
    ldxw r3, [r1+8]
    ldxdw r4, [r10-16]
    stxb [r10-1], r3
    stw [r10-8], 77
    xadddw [r10-8], r4
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns[0].op, Op::kLdxW);
  EXPECT_EQ(result->insns[0].off, 8);
  EXPECT_EQ(result->insns[1].off, -16);
  EXPECT_EQ(result->insns[2].op, Op::kStxB);
  EXPECT_EQ(result->insns[3].op, Op::kStW);
  EXPECT_EQ(result->insns[3].imm, 77);
  EXPECT_EQ(result->insns[4].op, Op::kAtomicAddDW);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  auto result = Assemble(R"(
  top:
    add r1, 1
    jlt r1, 10, top
    jeq r1, 10, end
    mov r0, 1
  end:
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok());
  // jlt at index 1 jumps back to 0: off = 0 - 2 = -2.
  EXPECT_EQ(result->insns[1].off, -2);
  // jeq at index 2 jumps to index 4: off = 4 - 3 = 1.
  EXPECT_EQ(result->insns[2].off, 1);
}

TEST(Assembler, NumericJumpOffsets) {
  auto result = Assemble(R"(
    ja +1
    mov r0, 1
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns[0].op, Op::kJa);
  EXPECT_EQ(result->insns[0].off, 1);
}

TEST(Assembler, CallByNameAndNumber) {
  auto result = Assemble(R"(
    call get_prandom_u32
    call 5
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns[0].imm,
            static_cast<int64_t>(HelperId::kGetPrandomU32));
  EXPECT_EQ(result->insns[1].imm, 5);
}

TEST(Assembler, MapDeclarationsAndReferences) {
  auto result = Assemble(R"(
    .map counters array 4 8 16
    .extern_map shared /syrup/app/shared
    ldmapfd r1, counters
    ldmapfd r2, shared
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->map_slots.size(), 2u);
  EXPECT_EQ(result->map_slots[0].name, "counters");
  EXPECT_FALSE(result->map_slots[0].is_extern);
  EXPECT_EQ(result->map_slots[0].spec.type, MapType::kArray);
  EXPECT_EQ(result->map_slots[0].spec.max_entries, 16u);
  EXPECT_TRUE(result->map_slots[1].is_extern);
  EXPECT_EQ(result->map_slots[1].path, "/syrup/app/shared");
  EXPECT_EQ(result->insns[0].imm, 0);
  EXPECT_EQ(result->insns[1].imm, 1);
}

TEST(Assembler, CommentsAndBlankLines) {
  auto result = Assemble(R"(
    ; full line comment
    # hash comment

    mov r0, 0   ; trailing comment
    exit        # another
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->insns.size(), 2u);
}

// --- error cases ----------------------------------------------------------------

TEST(AssemblerErrors, UnknownMnemonic) {
  auto result = Assemble("frobnicate r1, r2\nexit\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown mnemonic"),
            std::string::npos);
}

TEST(AssemblerErrors, ErrorNamesLineNumber) {
  auto result = Assemble("mov r0, 0\nbogus\nexit\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerErrors, UnknownLabel) {
  auto result = Assemble("jeq r1, 0, nowhere\nexit\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown label"),
            std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_FALSE(Assemble("a:\na:\nexit\n").ok());
}

TEST(AssemblerErrors, DuplicateMapName) {
  EXPECT_FALSE(Assemble(".map m array 4 8 1\n.map m array 4 8 1\nexit\n").ok());
}

TEST(AssemblerErrors, UnknownMapReference) {
  EXPECT_FALSE(Assemble("ldmapfd r1, nosuchmap\nexit\n").ok());
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_FALSE(Assemble("mov r11, 0\nexit\n").ok());
  EXPECT_FALSE(Assemble("mov rX, 0\nexit\n").ok());
}

TEST(AssemblerErrors, EmptyProgram) {
  EXPECT_FALSE(Assemble("; nothing\n").ok());
}

TEST(AssemblerErrors, BadMapType) {
  EXPECT_FALSE(Assemble(".map m ring 4 8 1\nexit\n").ok());
}

TEST(AssemblerErrors, BadDirective) {
  EXPECT_FALSE(Assemble(".wat 1\nexit\n").ok());
}

TEST(AssemblerErrors, BadCtx) {
  EXPECT_FALSE(Assemble(".ctx kernel\nexit\n").ok());
}

// --- disassembler round-trip sanity ----------------------------------------------

TEST(Disassemble, ProducesReadableText) {
  auto result = Assemble(R"(
    mov r1, 5
    ldxw r3, [r1+8]
    jeq r3, 0, +1
    mov r0, 0
    exit
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Disassemble(result->insns[0]), "mov r1, 5");
  EXPECT_EQ(Disassemble(result->insns[1]), "ldxw r3, [r1+8]");
  EXPECT_EQ(Disassemble(result->insns[2]), "jeq r3, 0, +1");
  EXPECT_EQ(Disassemble(result->insns[4]), "exit");
}

}  // namespace
}  // namespace syrup::bpf
