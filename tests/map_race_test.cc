// Lock-free map race test (run under TSan in CI): reader threads storm
// Lookup/LookupBatch against writer threads storming Update/Delete on an
// overlapping key range. The chained map this suite replaced had a
// documented lookup/delete use-after-free (a reader could hold a node
// pointer across the bucket unlink and free); the swiss-table HashMap
// closes it by construction — values live in stable storage that is only
// recycled after every reader pinned at retirement time has unpinned
// (src/map/epoch.h). TSan verifies the remaining discipline: ctrl bytes,
// seqlock stamps, and slot bytes are raced on purpose but only ever
// through the map's atomic accessors, so any plain-memory race is a bug.
//
// Readers pin the reclamation epoch the way dispatch does (one ReadGuard
// per batch of operations), and every value pointer a reader dereferences
// must yield a value some writer actually stored for that key — a torn or
// recycled read surfaces as a bogus value even when TSan is not active.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/map/epoch.h"
#include "src/map/hash_map.h"
#include "src/map/map.h"

namespace syrup {
namespace {

MapSpec HashSpec(uint32_t entries, uint32_t key_size = 4,
                 uint32_t value_size = 8) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.key_size = key_size;
  spec.value_size = value_size;
  spec.max_entries = entries;
  spec.name = "raced";
  return spec;
}

// Values are tagged with the key that wrote them so readers can detect a
// cross-slot or recycled read: value = key * kTag + generation, with
// generation < kTag. Any observed value whose key tag mismatches is a
// reader that saw another slot's (or a freed slot's) bytes.
constexpr uint64_t kTag = 1'000'000;

TEST(MapRace, LookupUpdateDeleteStorm) {
  constexpr uint32_t kKeys = 256;
  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  constexpr auto kDuration = std::chrono::milliseconds(300);

  HashMap map(HashSpec(kKeys));
  for (uint32_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map.UpdateU64(k, uint64_t{k} * kTag).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bogus{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&map, &stop, &bogus, r] {
      uint32_t key = static_cast<uint32_t>(r * 17);
      while (!stop.load(std::memory_order_relaxed)) {
        // Pin once per burst, as DispatchChunk does.
        epoch::ReadGuard guard;
        for (int i = 0; i < 64; ++i) {
          key = (key * 2654435761u + 1) % kKeys;
          void* value = map.Lookup(&key);
          if (value != nullptr) {
            const uint64_t v = Map::AtomicLoad(value);
            if (v / kTag != key) {
              bogus.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  // A batched reader: the helper path (LookupBatchU64) storms the same
  // table; hits must carry the right key tag and the bitmap must agree
  // with the copied-out values (0 exactly on miss bits... misses copy 0).
  threads.emplace_back([&map, &stop, &bogus] {
    uint32_t base = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      epoch::ReadGuard guard;
      uint32_t keys[Map::kMaxLookupBatch];
      uint64_t out[Map::kMaxLookupBatch];
      for (uint32_t i = 0; i < Map::kMaxLookupBatch; ++i) {
        keys[i] = (base + i * 7) % kKeys;
      }
      base = base * 48271 % 0x7FFFFFFF;
      const uint64_t hits = map.LookupBatchU64(Map::kMaxLookupBatch, keys, out);
      for (uint32_t i = 0; i < Map::kMaxLookupBatch; ++i) {
        if ((hits >> i & 1) != 0 && out[i] / kTag != keys[i]) {
          bogus.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&map, &stop, w] {
      // Each writer owns a disjoint generation stripe so Update never
      // writes a value another writer could also write; delete/reinsert
      // churns slots through tombstone → epoch-gated reuse.
      uint64_t gen = static_cast<uint64_t>(w) + 1;
      uint32_t key = static_cast<uint32_t>(w * 41);
      while (!stop.load(std::memory_order_relaxed)) {
        key = (key * 1664525u + 1013904223u) % kKeys;
        if ((gen & 7) == 0) {
          (void)map.Delete(&key);
        } else {
          // A reinsert may transiently hit ResourceExhausted when every
          // tombstone is pinned by a concurrent reader; that is expected
          // backpressure, not a correctness failure.
          (void)map.UpdateU64(key, uint64_t{key} * kTag + gen % 100);
        }
        gen += kWriters;
      }
    });
  }

  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(bogus.load(), 0u);
  // The table must still be coherent after the storm: every surviving key
  // round-trips, and the runtime gauges see a sane occupancy.
  const MapRuntimeStats stats = map.RuntimeStats();
  EXPECT_EQ(stats.occupancy, map.Size());
  EXPECT_LE(stats.occupancy, kKeys);
  uint64_t visited = 0;
  map.Visit([&visited](const void*, void*) { ++visited; });
  EXPECT_EQ(visited, map.Size());
}

// Large values spill to the slab: the value pointer handed to a reader
// must stay valid (and untorn at 8-byte granularity) for the duration of
// the reader's pin even when the entry is deleted and its cell queued for
// reuse mid-read.
TEST(MapRace, SlabValueStormKeepsPointersStable) {
  constexpr uint32_t kKeys = 64;
  constexpr uint32_t kValueSize = 40;
  constexpr auto kDuration = std::chrono::milliseconds(200);

  HashMap map(HashSpec(kKeys, 4, kValueSize));
  auto fill = [](uint64_t tag, uint8_t* out) {
    uint64_t words[kValueSize / 8];
    for (auto& word : words) {
      word = tag;
    }
    std::memcpy(out, words, kValueSize);
  };
  for (uint32_t k = 0; k < kKeys; ++k) {
    uint8_t value[kValueSize];
    fill(k, value);
    ASSERT_TRUE(map.Update(&k, value, UpdateFlag::kAny).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bogus{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&map, &stop, &bogus, r] {
      uint32_t key = static_cast<uint32_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        epoch::ReadGuard guard;
        for (int i = 0; i < 32; ++i) {
          key = (key * 2654435761u + 1) % kKeys;
          void* value = map.Lookup(&key);
          if (value == nullptr) {
            continue;
          }
          // Each 8-byte word is written atomically by the writer; a word
          // that is neither a key tag nor torn-free is a recycled cell.
          const uint64_t word =
              Map::AtomicLoad(static_cast<uint8_t*>(value) + 8);
          if (word >= kKeys) {
            bogus.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.emplace_back([&map, &stop, &fill] {
    uint32_t key = 3;
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      key = (key * 1664525u + 1013904223u) % kKeys;
      if ((n & 3) == 0) {
        (void)map.Delete(&key);
      } else {
        uint8_t value[kValueSize];
        fill(key, value);
        (void)map.Update(&key, value, UpdateFlag::kAny);
      }
      ++n;
    }
  });

  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(bogus.load(), 0u);
}

}  // namespace
}  // namespace syrup
