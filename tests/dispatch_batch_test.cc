// Batched dispatch differential tests: Syrupd::DispatchBatch must be
// observably identical to per-packet dispatch — same decisions in the same
// order, same counters — for every packet hook, every chunking, and every
// mix of cacheable/uncacheable/absent policies. The batch API is allowed
// to hoist pure work (port resolution, key derivation, prefetch), never to
// reorder or coalesce effects.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/net/kcm.h"
#include "src/net/stack.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

Packet MakePacket(uint16_t dst_port, uint32_t key_hash,
                  uint16_t src_port = 20'000) {
  Packet pkt;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a0000ff;
  pkt.tuple.src_port = src_port;
  pkt.tuple.dst_port = dst_port;
  pkt.SetHeader(ReqType::kGet, 1, key_hash, 1, 0);
  return pkt;
}

SteerHook& SingleHook(HostStack& stack, Hook hook) {
  switch (hook) {
    case Hook::kXdpOffload:
      return stack.hooks().xdp_offload;
    case Hook::kXdpDrv:
      return stack.hooks().xdp_drv;
    case Hook::kXdpSkb:
      return stack.hooks().xdp_skb;
    case Hook::kCpuRedirect:
      return stack.hooks().cpu_redirect;
    default:
      return stack.hooks().socket_select;
  }
}

// One daemon + stack pair; the differential runs two of these in lockstep.
struct Side {
  Side() : stack(sim, StackConfig{}), syrupd(sim, &stack) {
    app = syrupd.RegisterApp("a", 1000, 9000).value();
  }

  uint64_t Counter(Hook hook, const char* name) {
    return syrupd.StatsSnapshot().CounterValue(
        "syrupd", HookName(hook), std::string("flow_cache.") + name);
  }

  Simulator sim;
  HostStack stack;
  Syrupd syrupd;
  AppId app = 0;
};

// Drives the same randomized packet sequence through per-packet dispatch
// on one side and randomly-chunked DispatchBatch on the other. Any
// map mutation happens only at chunk boundaries, identically on both
// sides, so per-packet state evolution must match exactly.
void RunDifferential(Hook hook, const std::string& policy_asm,
                     bool with_load_map, uint64_t seed) {
  SCOPED_TRACE(std::string(HookName(hook)) + " seed=" +
               std::to_string(seed));
  Side single, batch;
  MapHandle single_load, batch_load;
  auto pin_load = [](Side& side) {
    SyrupClient client(side.syrupd, side.app);
    MapSpec spec;
    spec.max_entries = 6;
    spec.name = "load";
    MapHandle load = client.MapCreate(spec, "/syrup/a/load").value();
    for (uint32_t i = 0; i < 6; ++i) {
      EXPECT_TRUE(load.Update(i, 10 + i).ok());
    }
    return load;
  };
  if (with_load_map) {
    single_load = pin_load(single);
    batch_load = pin_load(batch);
  }
  ASSERT_TRUE(
      single.syrupd.DeployPolicyFile(single.app, policy_asm, hook).ok());
  ASSERT_TRUE(
      batch.syrupd.DeployPolicyFile(batch.app, policy_asm, hook).ok());

  // ~200 flows across 1500 packets, with a sprinkle of packets to an
  // unowned port (no-policy fall-through) so the batch's port-resolution
  // memoization sees transitions.
  Rng traffic(seed);
  std::vector<Packet> packets;
  packets.reserve(1500);
  for (int i = 0; i < 1500; ++i) {
    const uint16_t port = traffic.NextBounded(10) == 0 ? 9001 : 9000;
    packets.push_back(MakePacket(
        port, static_cast<uint32_t>(traffic.NextBounded(200)) * 2654435761u));
  }
  std::vector<PacketView> views;
  views.reserve(packets.size());
  for (const Packet& pkt : packets) {
    views.push_back(PacketView::Of(pkt));
  }

  std::vector<Decision> single_out(packets.size(), 0);
  std::vector<Decision> batch_out(packets.size(), 0);
  Rng chunks(seed ^ 0x9e3779b97f4a7c15ull);
  size_t pos = 0;
  while (pos < packets.size()) {
    const size_t n = std::min(
        packets.size() - pos, size_t{1} + chunks.NextBounded(63));
    if (with_load_map && chunks.NextBounded(4) == 0) {
      // Shift the load between chunks — same update on both sides, so
      // version-sum invalidation fires at the same packet index.
      const uint32_t idx = static_cast<uint32_t>(chunks.NextBounded(6));
      const uint64_t value = 1 + chunks.NextBounded(100);
      ASSERT_TRUE(single_load.Update(idx, value).ok());
      ASSERT_TRUE(batch_load.Update(idx, value).ok());
    }
    for (size_t i = pos; i < pos + n; ++i) {
      single_out[i] = SingleHook(single.stack, hook)(views[i]);
    }
    batch.syrupd.DispatchBatch(
        hook, std::span<const PacketView>(&views[pos], n),
        std::span<Decision>(&batch_out[pos], n));
    pos += n;
  }

  for (size_t i = 0; i < packets.size(); ++i) {
    ASSERT_EQ(single_out[i], batch_out[i]) << "packet " << i;
  }
  // Counter-for-counter equality: the batch path may not change *when*
  // policies run or cache entries move, only amortize the bookkeeping.
  for (const char* name : {"hits", "misses", "invalidations", "uncacheable",
                           "evictions", "admission_rejects", "resizes"}) {
    EXPECT_EQ(single.Counter(hook, name), batch.Counter(hook, name))
        << "flow_cache." << name;
  }
  EXPECT_EQ(single.syrupd.dispatch_stats(hook).dispatched,
            batch.syrupd.dispatch_stats(hook).dispatched);
  EXPECT_EQ(single.syrupd.dispatch_stats(hook).no_policy,
            batch.syrupd.dispatch_stats(hook).no_policy);
  EXPECT_EQ(single.syrupd.StatsSnapshot().CounterValue(
                "a", HookName(hook), "policy.invocations"),
            batch.syrupd.StatsSnapshot().CounterValue(
                "a", HookName(hook), "policy.invocations"));
}

constexpr Hook kPacketHooks[] = {Hook::kXdpOffload, Hook::kXdpDrv,
                                 Hook::kXdpSkb, Hook::kCpuRedirect,
                                 Hook::kSocketSelect};

TEST(DispatchBatch, CacheablePolicyMatchesSingleOnAllHooks) {
  for (Hook hook : kPacketHooks) {
    RunDifferential(hook, MicaHomePolicyAsm(6), /*with_load_map=*/false, 1);
  }
}

TEST(DispatchBatch, UncacheableStatefulPolicyMatchesSingleOnAllHooks) {
  // Round robin mutates map state on every decision: the batch must
  // execute it per packet, in order.
  for (Hook hook : kPacketHooks) {
    RunDifferential(hook, RoundRobinPolicyAsm(6), /*with_load_map=*/false, 2);
  }
}

TEST(DispatchBatch, MapReadingPolicyWithChurnMatchesSingle) {
  // least_loaded reads the pinned load map through map_lookup_batch (its
  // asm twin batches the whole register scan); chunk-boundary updates
  // force invalidations at identical packet indices on both sides. All
  // packet hooks: the batched miss path must stay bit-identical to
  // single-packet dispatch everywhere.
  for (Hook hook : kPacketHooks) {
    RunDifferential(hook, LeastLoadedPolicyAsm(6, "/syrup/a/load"),
                    /*with_load_map=*/true, 3);
  }
}

TEST(DispatchBatch, TinyAdaptiveCacheStillMatchesSingle) {
  // Same differential under a deliberately churning cache config.
  FlowCacheConfig config;
  config.capacity = 64;
  config.admission = true;
  config.adaptive = true;
  Side single, batch;
  single.syrupd.set_flow_cache_config(config);
  batch.syrupd.set_flow_cache_config(config);
  ASSERT_TRUE(single.syrupd
                  .DeployPolicyFile(single.app, MicaHomePolicyAsm(6),
                                    Hook::kSocketSelect)
                  .ok());
  ASSERT_TRUE(batch.syrupd
                  .DeployPolicyFile(batch.app, MicaHomePolicyAsm(6),
                                    Hook::kSocketSelect)
                  .ok());
  Rng traffic(11);
  std::vector<Packet> packets;
  for (int i = 0; i < 4000; ++i) {
    packets.push_back(MakePacket(
        9000, static_cast<uint32_t>(traffic.NextBounded(500)) * 2654435761u));
  }
  std::vector<PacketView> views;
  for (const Packet& pkt : packets) {
    views.push_back(PacketView::Of(pkt));
  }
  std::vector<Decision> batch_out(packets.size(), 0);
  Rng chunks(12);
  size_t pos = 0;
  while (pos < packets.size()) {
    const size_t n = std::min(
        packets.size() - pos, size_t{1} + chunks.NextBounded(63));
    batch.syrupd.DispatchBatch(
        Hook::kSocketSelect, std::span<const PacketView>(&views[pos], n),
        std::span<Decision>(&batch_out[pos], n));
    pos += n;
  }
  for (size_t i = 0; i < packets.size(); ++i) {
    const Decision d = single.stack.hooks().socket_select(views[i]);
    ASSERT_EQ(d, batch_out[i]) << "packet " << i;
  }
  for (const char* name : {"hits", "misses", "evictions",
                           "admission_rejects", "resizes"}) {
    EXPECT_EQ(single.Counter(Hook::kSocketSelect, name),
              batch.Counter(Hook::kSocketSelect, name))
        << "flow_cache." << name;
  }
}

TEST(DispatchBatch, OversizedBatchIsChunkedTransparently) {
  Side side;
  ASSERT_TRUE(side.syrupd
                  .DeployPolicyFile(side.app, MicaHomePolicyAsm(6),
                                    Hook::kSocketSelect)
                  .ok());
  // 3 * kMaxDispatchBatch + 7 packets in one call: the public API accepts
  // any span and chunks internally.
  const size_t total = 3 * Syrupd::kMaxDispatchBatch + 7;
  std::vector<Packet> packets;
  for (size_t i = 0; i < total; ++i) {
    packets.push_back(MakePacket(9000, static_cast<uint32_t>(i)));
  }
  std::vector<PacketView> views;
  for (const Packet& pkt : packets) {
    views.push_back(PacketView::Of(pkt));
  }
  std::vector<Decision> out(total, 0);
  side.syrupd.DispatchBatch(Hook::kSocketSelect, views, out);
  for (size_t i = 0; i < total; ++i) {
    EXPECT_EQ(out[i], static_cast<Decision>(i % 6));
  }
  EXPECT_EQ(side.syrupd.dispatch_stats(Hook::kSocketSelect).dispatched,
            total);
}

// --- burst entry points ------------------------------------------------------

TEST(DispatchBatch, RxBurstMatchesSequentialRx) {
  // Same packets, same instant: RxBurst (batched offload hook, NIC DMA
  // burst model) must produce the same stack accounting as per-packet Rx
  // when the offload policy has no cross-packet state.
  auto run = [](bool burst) {
    Simulator sim;
    HostStack stack(sim, StackConfig{});
    Syrupd syrupd(sim, &stack);
    const AppId app = syrupd.RegisterApp("a", 1000, 9000).value();
    EXPECT_TRUE(syrupd
                    .DeployPolicyFile(app, MicaHomePolicyAsm(4),
                                      Hook::kXdpOffload)
                    .ok());
    ReuseportGroup* group = stack.GetOrCreateGroup(9000);
    for (int i = 0; i < 4; ++i) {
      group->AddSocket(64);
    }
    std::vector<Packet> packets;
    for (uint32_t i = 0; i < 256; ++i) {
      packets.push_back(MakePacket(9000, i, 20'000 + (i % 64)));
    }
    if (burst) {
      stack.RxBurst(packets);
    } else {
      for (const Packet& pkt : packets) {
        stack.Rx(pkt);
      }
    }
    sim.RunUntil(1 * kMillisecond);
    return stack.stats();
  };
  const StackStats sequential = run(false);
  const StackStats bursty = run(true);
  EXPECT_EQ(sequential.rx_packets, bursty.rx_packets);
  EXPECT_EQ(sequential.delivered_socket, bursty.delivered_socket);
  EXPECT_EQ(sequential.policy_drops, bursty.policy_drops);
  EXPECT_EQ(sequential.socket_drops, bursty.socket_drops);
  EXPECT_EQ(sequential.invalid_decisions, bursty.invalid_decisions);
  EXPECT_GT(bursty.rx_packets, 0u);
}

TEST(DispatchBatch, KcmBatchPolicySchedulesWholeSegments) {
  // A TCP segment carrying several complete messages reaches the batch
  // policy as one burst; decisions and delivery order match the
  // per-message policy exactly.
  struct Delivered {
    uint64_t stream;
    Decision decision;
    std::vector<uint8_t> message;
  };
  auto run = [](bool batched) {
    std::vector<Delivered> log;
    KcmMultiplexor kcm([&log](uint64_t stream, Decision d,
                              const std::vector<uint8_t>& msg) {
      log.push_back({stream, d, msg});
    });
    auto decide = [](const PacketView& view) -> Decision {
      // Schedule by first payload byte; drop 0xFF messages.
      if (view.size() > 0 && view.start[0] == 0xFF) {
        return kDrop;
      }
      return view.size() > 0 ? view.start[0] % 4 : kPass;
    };
    if (batched) {
      kcm.SetBatchPolicy([decide](std::span<const PacketView> msgs,
                                  std::span<Decision> out) {
        for (size_t i = 0; i < msgs.size(); ++i) {
          out[i] = decide(msgs[i]);
        }
      });
    } else {
      kcm.SetPolicy(decide);
    }
    // One segment, four messages (one of them a drop).
    std::vector<uint8_t> segment;
    for (uint8_t first : {uint8_t{1}, uint8_t{6}, uint8_t{0xFF},
                          uint8_t{3}}) {
      const uint8_t payload[3] = {first, 0xAA, 0xBB};
      const std::vector<uint8_t> frame = KcmFrame(payload, sizeof(payload));
      segment.insert(segment.end(), frame.begin(), frame.end());
    }
    EXPECT_TRUE(kcm.OnSegment(7, segment.data(), segment.size()).ok());
    EXPECT_EQ(kcm.messages_delivered(), 3u);
    EXPECT_EQ(kcm.messages_dropped(), 1u);
    return log;
  };
  const std::vector<Delivered> single = run(false);
  const std::vector<Delivered> batch = run(true);
  ASSERT_EQ(single.size(), batch.size());
  ASSERT_EQ(single.size(), 3u);
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].stream, batch[i].stream);
    EXPECT_EQ(single[i].decision, batch[i].decision);
    EXPECT_EQ(single[i].message, batch[i].message);
  }
  EXPECT_EQ(batch[0].decision, 1u);
  EXPECT_EQ(batch[1].decision, 2u);
  EXPECT_EQ(batch[2].decision, 3u);
}

}  // namespace
}  // namespace syrup
