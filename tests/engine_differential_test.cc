// Differential test: the pooled timing-wheel engine must reproduce the
// reference heap engine bit-for-bit on the paper's experiment pipelines.
// Determinism is contractual (same seed => same execution), so every numeric
// result — throughputs, latency percentiles, drop fractions — must be
// exactly equal, not approximately. `stats_json` is deliberately excluded:
// it embeds wall-clock compile-time gauges that differ between any two runs.
#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// Scoped process-wide engine selection for the experiment harness, which
// constructs its own Simulator internally.
class ScopedEngine {
 public:
  explicit ScopedEngine(SimEngine engine) {
    Simulator::SetDefaultEngine(engine);
  }
  ~ScopedEngine() { Simulator::ResetDefaultEngine(); }
};

RocksDbExperimentConfig SmallRocksDbConfig() {
  RocksDbExperimentConfig config;
  config.socket_policy = SocketPolicyKind::kScanAvoid;
  config.load_rps = 60'000;
  config.get_fraction = 0.995;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  return config;
}

TEST(EngineDifferential, Fig2RocksDbBitExact) {
  const RocksDbExperimentConfig config = SmallRocksDbConfig();
  RocksDbResult wheel;
  RocksDbResult reference;
  {
    ScopedEngine scope(SimEngine::kTimingWheel);
    wheel = RunRocksDbExperiment(config);
  }
  {
    ScopedEngine scope(SimEngine::kReference);
    reference = RunRocksDbExperiment(config);
  }
  EXPECT_EQ(wheel.throughput_rps, reference.throughput_rps);
  EXPECT_EQ(wheel.p50_us, reference.p50_us);
  EXPECT_EQ(wheel.p99_us, reference.p99_us);
  EXPECT_EQ(wheel.p99_get_us, reference.p99_get_us);
  EXPECT_EQ(wheel.p99_scan_us, reference.p99_scan_us);
  EXPECT_EQ(wheel.drop_fraction, reference.drop_fraction);
  EXPECT_EQ(wheel.get_throughput_rps, reference.get_throughput_rps);
  EXPECT_EQ(wheel.scan_throughput_rps, reference.scan_throughput_rps);
}

TEST(EngineDifferential, Fig9MicaBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSwRedirect;  // exercises ForwardToHome
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  MicaResult wheel;
  MicaResult reference;
  {
    ScopedEngine scope(SimEngine::kTimingWheel);
    wheel = RunMicaExperiment(config);
  }
  {
    ScopedEngine scope(SimEngine::kReference);
    reference = RunMicaExperiment(config);
  }
  EXPECT_EQ(wheel.throughput_rps, reference.throughput_rps);
  EXPECT_EQ(wheel.p50_us, reference.p50_us);
  EXPECT_EQ(wheel.p999_us, reference.p999_us);
  EXPECT_EQ(wheel.drop_fraction, reference.drop_fraction);
  EXPECT_EQ(wheel.redirected, reference.redirected);
}

TEST(EngineDifferential, Fig9MicaSyrupSwBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSyrupSw;  // AF_XDP delivery path
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  MicaResult wheel;
  MicaResult reference;
  {
    ScopedEngine scope(SimEngine::kTimingWheel);
    wheel = RunMicaExperiment(config);
  }
  {
    ScopedEngine scope(SimEngine::kReference);
    reference = RunMicaExperiment(config);
  }
  EXPECT_EQ(wheel.throughput_rps, reference.throughput_rps);
  EXPECT_EQ(wheel.p50_us, reference.p50_us);
  EXPECT_EQ(wheel.p999_us, reference.p999_us);
  EXPECT_EQ(wheel.drop_fraction, reference.drop_fraction);
  EXPECT_EQ(wheel.redirected, reference.redirected);
}

// --- Sharded engine (src/sim/sharded.h) -------------------------------------
//
// Contract one: `shards=1` wraps the very same engine in a ShardedSim and
// must reproduce the single-engine run bit for bit. Contract two: for a
// fixed shard count > 1, a run is bit-deterministic across repeats — the
// (when, src_shard, seq) drain order erases any physical thread timing.

void ExpectSameRocksDb(const RocksDbResult& a, const RocksDbResult& b) {
  EXPECT_EQ(a.load_rps, b.load_rps);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.p99_get_us, b.p99_get_us);
  EXPECT_EQ(a.p99_scan_us, b.p99_scan_us);
  EXPECT_EQ(a.drop_fraction, b.drop_fraction);
  EXPECT_EQ(a.get_throughput_rps, b.get_throughput_rps);
  EXPECT_EQ(a.scan_throughput_rps, b.scan_throughput_rps);
}

void ExpectSameMica(const MicaResult& a, const MicaResult& b) {
  EXPECT_EQ(a.load_rps, b.load_rps);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p999_us, b.p999_us);
  EXPECT_EQ(a.drop_fraction, b.drop_fraction);
  EXPECT_EQ(a.redirected, b.redirected);
}

MicaExperimentConfig SmallMicaConfig() {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSwRedirect;
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  return config;
}

TEST(ShardedDifferential, Fig2RocksDbOneShardBitExact) {
  const RocksDbExperimentConfig single = SmallRocksDbConfig();
  RocksDbExperimentConfig sharded = single;
  sharded.sharding.sim.shards = 1;
  ExpectSameRocksDb(RunRocksDbExperiment(single),
                    RunRocksDbExperiment(sharded));
}

TEST(ShardedDifferential, Fig9MicaOneShardBitExact) {
  const MicaExperimentConfig single = SmallMicaConfig();
  MicaExperimentConfig sharded = single;
  sharded.sharding.sim.shards = 1;
  ExpectSameMica(RunMicaExperiment(single), RunMicaExperiment(sharded));
}

TEST(ShardedDifferential, Fig2RocksDbFourShardsRepeatable) {
  RocksDbExperimentConfig config = SmallRocksDbConfig();
  config.load_rps = 30'000;
  config.measure = 100 * kMillisecond;
  config.sharding.sim.shards = 4;
  for (uint64_t seed : {7u, 11u, 42u}) {
    config.seed = seed;
    const RocksDbResult first = RunRocksDbExperiment(config);
    const RocksDbResult second = RunRocksDbExperiment(config);
    SCOPED_TRACE(seed);
    ExpectSameRocksDb(first, second);
  }
}

TEST(ShardedDifferential, Fig9MicaFourShardsRepeatable) {
  MicaExperimentConfig config = SmallMicaConfig();
  config.load_rps = 200'000;
  config.measure = 100 * kMillisecond;
  config.sharding.sim.shards = 4;
  for (uint64_t seed : {7u, 11u, 42u}) {
    config.seed = seed;
    const MicaResult first = RunMicaExperiment(config);
    const MicaResult second = RunMicaExperiment(config);
    SCOPED_TRACE(seed);
    ExpectSameMica(first, second);
  }
}

}  // namespace
}  // namespace syrup
