// Differential test: the pooled timing-wheel engine must reproduce the
// reference heap engine bit-for-bit on the paper's experiment pipelines.
// Determinism is contractual (same seed => same execution), so every numeric
// result — throughputs, latency percentiles, drop fractions — must be
// exactly equal, not approximately. `stats_json` is deliberately excluded:
// it embeds wall-clock compile-time gauges that differ between any two runs.
#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

// Scoped process-wide engine selection for the experiment harness, which
// constructs its own Simulator internally.
class ScopedEngine {
 public:
  explicit ScopedEngine(SimEngine engine) {
    Simulator::SetDefaultEngine(engine);
  }
  ~ScopedEngine() { Simulator::ResetDefaultEngine(); }
};

RocksDbExperimentConfig SmallRocksDbConfig() {
  RocksDbExperimentConfig config;
  config.socket_policy = SocketPolicyKind::kScanAvoid;
  config.load_rps = 60'000;
  config.get_fraction = 0.995;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  return config;
}

TEST(EngineDifferential, Fig2RocksDbBitExact) {
  const RocksDbExperimentConfig config = SmallRocksDbConfig();
  RocksDbResult wheel;
  RocksDbResult reference;
  {
    ScopedEngine scope(SimEngine::kTimingWheel);
    wheel = RunRocksDbExperiment(config);
  }
  {
    ScopedEngine scope(SimEngine::kReference);
    reference = RunRocksDbExperiment(config);
  }
  EXPECT_EQ(wheel.throughput_rps, reference.throughput_rps);
  EXPECT_EQ(wheel.p50_us, reference.p50_us);
  EXPECT_EQ(wheel.p99_us, reference.p99_us);
  EXPECT_EQ(wheel.p99_get_us, reference.p99_get_us);
  EXPECT_EQ(wheel.p99_scan_us, reference.p99_scan_us);
  EXPECT_EQ(wheel.drop_fraction, reference.drop_fraction);
  EXPECT_EQ(wheel.get_throughput_rps, reference.get_throughput_rps);
  EXPECT_EQ(wheel.scan_throughput_rps, reference.scan_throughput_rps);
}

TEST(EngineDifferential, Fig9MicaBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSwRedirect;  // exercises ForwardToHome
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  MicaResult wheel;
  MicaResult reference;
  {
    ScopedEngine scope(SimEngine::kTimingWheel);
    wheel = RunMicaExperiment(config);
  }
  {
    ScopedEngine scope(SimEngine::kReference);
    reference = RunMicaExperiment(config);
  }
  EXPECT_EQ(wheel.throughput_rps, reference.throughput_rps);
  EXPECT_EQ(wheel.p50_us, reference.p50_us);
  EXPECT_EQ(wheel.p999_us, reference.p999_us);
  EXPECT_EQ(wheel.drop_fraction, reference.drop_fraction);
  EXPECT_EQ(wheel.redirected, reference.redirected);
}

TEST(EngineDifferential, Fig9MicaSyrupSwBitExact) {
  MicaExperimentConfig config;
  config.variant = MicaVariant::kSyrupSw;  // AF_XDP delivery path
  config.load_rps = 400'000;
  config.warmup = 50 * kMillisecond;
  config.measure = 200 * kMillisecond;
  config.seed = 7;
  MicaResult wheel;
  MicaResult reference;
  {
    ScopedEngine scope(SimEngine::kTimingWheel);
    wheel = RunMicaExperiment(config);
  }
  {
    ScopedEngine scope(SimEngine::kReference);
    reference = RunMicaExperiment(config);
  }
  EXPECT_EQ(wheel.throughput_rps, reference.throughput_rps);
  EXPECT_EQ(wheel.p50_us, reference.p50_us);
  EXPECT_EQ(wheel.p999_us, reference.p999_us);
  EXPECT_EQ(wheel.drop_fraction, reference.drop_fraction);
  EXPECT_EQ(wheel.redirected, reference.redirected);
}

}  // namespace
}  // namespace syrup
