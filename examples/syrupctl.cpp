// syrupctl: bpftool-style introspection of a live Syrup deployment.
//
// Demonstrates the operator surface: list attached policies, list pinned
// maps, dump map contents, and export the daemon's metrics — the
// observability a resource manager (paper §3.2) builds on. Runs against a
// small in-process multi-tenant deployment since the whole system is a
// library.
//
// Build & run:
//   ./build/examples/syrupctl            # human-readable inspection
//   ./build/examples/syrupctl stats      # full StatsSnapshot() as JSON
//   ./build/examples/syrupctl flow-cache # FlowCacheConfig + cache counters
//   ./build/examples/syrupctl lint p.s   # verifier lint report for a policy
//   ./build/examples/syrupctl cost p.s   # per-tier WCET breakdown + budgets
//   ./build/examples/syrupctl analyze    # deployment-wide map interference
//   ./build/examples/syrupctl exec-mode            # requested vs effective tier
//   ./build/examples/syrupctl exec-mode native     # deploy under a given tier
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/apps/loadgen.h"
#include "src/apps/rocksdb_server.h"
#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"
#include "src/syrup.h"

namespace {

// `syrupctl lint <file.s>` (alias: `verify`): the offline face of the
// deploy-time verifier gate. Runs the keep-going VerifyAll() pass and
// prints every error plus the warning catalog, one formatted diagnostic
// per line — the same strings Syrupd would put in a rejection Status.
// Exit code: 0 clean (warnings allowed), 1 rejected, 2 usage/IO.
int LintPolicyFile(const char* path) {
  using namespace syrup;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lint: cannot read '%s'\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto assembled = bpf::Assemble(buffer.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "lint: %s\n",
                 assembled.status().ToString().c_str());
    return 1;
  }

  bpf::Program program;
  program.name = assembled->name;
  program.insns = assembled->insns;
  for (const bpf::MapSlot& slot : assembled->map_slots) {
    // Extern maps are bound at deploy time; lint substitutes a fresh map
    // of a generic shape so map-relative bounds still get checked.
    if (slot.is_extern) {
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 1024;
      program.maps.push_back(CreateMap(spec).value());
      continue;
    }
    program.maps.push_back(CreateMap(slot.spec).value());
  }

  const bpf::VerifyReport report =
      bpf::VerifyAll(program, assembled->context);
  size_t errors = 0;
  for (const bpf::Diagnostic& d : report.diagnostics) {
    if (d.severity == bpf::DiagSeverity::kError) ++errors;
    std::printf("%s\n", bpf::FormatDiagnostic(d, report.program).c_str());
  }
  std::printf(
      "%s: %zu error(s), %zu warning(s); visited %llu insns, "
      "%llu branch states (%llu pruned), %llu ns\n",
      report.ok() ? "OK" : "REJECTED", errors,
      report.diagnostics.size() - errors,
      static_cast<unsigned long long>(report.stats.visited_insns),
      static_cast<unsigned long long>(report.stats.branch_states),
      static_cast<unsigned long long>(report.stats.pruned_states),
      static_cast<unsigned long long>(report.stats.verify_ns));
  return report.ok() ? 0 : 1;
}

// `syrupctl cost <file.s>`: the offline face of the deploy-time WCET gate.
// Prints the verifier cost pass's per-tier worst/best-case bounds, the
// hottest path disassembled, and the verdict against every hook budget the
// program could deploy to. Uses the deterministic DefaultCostModel (the
// same tables the daemon's budget gate uses), so output is stable across
// machines. Exit: 0 bounded and verified, 1 rejected or unbounded, 2 IO.
int CostPolicyFile(const char* path) {
  using namespace syrup;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cost: cannot read '%s'\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto assembled = bpf::Assemble(buffer.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "cost: %s\n",
                 assembled.status().ToString().c_str());
    return 1;
  }

  bpf::Program program;
  program.name = assembled->name;
  program.insns = assembled->insns;
  for (const bpf::MapSlot& slot : assembled->map_slots) {
    // As in lint: extern maps bind at deploy time, so substitute a generic
    // hash map — the most expensive kind, keeping the bound conservative.
    if (slot.is_extern) {
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 1024;
      program.maps.push_back(CreateMap(spec).value());
      continue;
    }
    program.maps.push_back(CreateMap(slot.spec).value());
  }

  bpf::VerifierStats stats;
  bpf::AnalysisFacts facts;
  const Status verdict =
      bpf::Verify(program, assembled->context, {}, &stats, &facts);
  if (!verdict.ok()) {
    std::printf("REJECTED: %s\n", verdict.ToString().c_str());
    return 1;
  }
  const bpf::CostFacts& cost = facts.cost;
  const bool packet = assembled->context == bpf::ProgramContext::kPacket;
  std::printf("program '%s' (.ctx %s), %zu insns\n", program.name.c_str(),
              packet ? "packet" : "thread", program.insns.size());
  if (!cost.bounded) {
    std::printf("UNBOUNDED: the cost pass exhausted its exploration "
                "budget; no worst-case bound exists\n");
    return 1;
  }
  std::printf("wcet_insns=%llu best_insns=%llu%s\n",
              static_cast<unsigned long long>(cost.wcet_insns),
              static_cast<unsigned long long>(cost.best_insns),
              cost.has_tail_call
                  ? " (+ tail-call targets outside this analysis)"
                  : "");
  std::printf("%-10s %12s %12s\n", "tier", "wcet_ns", "best_ns");
  for (size_t t = 0; t < bpf::kNumCostTiers; ++t) {
    std::printf("%-10s %12.1f %12.1f\n",
                std::string(bpf::CostTierName(
                                static_cast<bpf::CostTier>(t)))
                    .c_str(),
                cost.wcet_ns[t], cost.best_ns[t]);
  }
  std::printf("hottest path (%zu insns):\n", cost.hottest_path.size());
  for (uint32_t pc : cost.hottest_path) {
    std::printf("  %3u: %s\n", pc,
                bpf::Disassemble(program.insns[pc]).c_str());
  }
  // Budget verdicts at the compiled tier — the daemon's default exec mode,
  // and what the deploy gate checks unless the deployment runs elsewhere.
  const double wcet =
      cost.wcet_ns[static_cast<size_t>(bpf::CostTier::kCompiled)];
  std::printf("budget check (compiled tier):\n");
  for (size_t i = 0; i < kNumHooks; ++i) {
    const Hook hook = HookFromIndex(i);
    if (IsPacketHook(hook) != packet) {
      continue;
    }
    const double budget = DefaultHookBudgetNs(hook);
    std::printf("  %-16s %8.1f ns budget  %5.1f%%  %s\n",
                std::string(HookName(hook)).c_str(), budget,
                100.0 * wcet / budget, wcet <= budget ? "OK" : "OVER");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syrup;
  const std::string command = argc > 1 ? argv[1] : "inspect";
  if (command == "lint" || command == "verify") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s %s <policy.s>\n", argv[0],
                   command.c_str());
      return 2;
    }
    return LintPolicyFile(argv[2]);
  }
  if (command == "cost") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s cost <policy.s>\n", argv[0]);
      return 2;
    }
    return CostPolicyFile(argv[2]);
  }
  if (command != "inspect" && command != "stats" &&
      command != "flow-cache" && command != "exec-mode" &&
      command != "analyze") {
    std::fprintf(stderr,
                 "usage: %s [inspect|stats|flow-cache|exec-mode [mode]|"
                 "lint <policy.s>|cost <policy.s>|analyze [--json]]\n",
                 argv[0]);
    return 2;
  }

  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = 4;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack);

  // `exec-mode <name>` switches the daemon's requested tier before anything
  // deploys — the runtime equivalent of the operator flipping the knob and
  // redeploying. With no argument it just reports the current state below.
  if (command == "exec-mode" && argc > 2) {
    const auto mode = bpf::ExecModeFromName(argv[2]);
    if (!mode.has_value()) {
      std::fprintf(stderr,
                   "exec-mode: unknown mode '%s' (interpret, compiled, "
                   "compiled-paranoid, native)\n",
                   argv[2]);
      return 2;
    }
    syrupd.set_exec_mode(*mode);
  }

  // A multi-tenant deployment to inspect: "rocksdb" runs SCAN Avoid at
  // socket-select plus a token policy file at XDP_SKB; "analytics" shares
  // the host with round robin on its own port. The typed handles own the
  // deployments; holding them in main keeps the policies attached for the
  // whole run.
  const AppId rocksdb = syrupd.RegisterApp("rocksdb", 1000, 9000).value();
  SyrupClient rocksdb_client(syrupd, rocksdb);
  PolicyHandle scan_avoid =
      rocksdb_client.DeployPolicy(ScanAvoidPolicyAsm(4), Hook::kSocketSelect)
          .value();
  PolicyHandle token =
      rocksdb_client.DeployPolicy(TokenPolicyAsm(), Hook::kXdpSkb).value();
  MapHandle tokens =
      rocksdb_client.MapOpen("/syrup/rocksdb/token_map").value();
  (void)tokens.Update(/*user=*/1, 35);
  (void)tokens.Update(/*user=*/2, 7);

  const AppId analytics = syrupd.RegisterApp("analytics", 1001, 9001).value();
  SyrupClient analytics_client(syrupd, analytics);
  PolicyHandle analytics_rr =
      analytics_client.DeployPolicy(RoundRobinPolicyAsm(4),
                                    Hook::kSocketSelect)
          .value();

  Machine machine(sim, 4);
  PinnedScheduler scheduler(machine);
  machine.SetScheduler(&scheduler);
  RocksDbConfig server_config;
  server_config.num_threads = 4;
  server_config.scan_map =
      syrupd.registry().Open("/syrup/rocksdb/scan_map", 1000).value();
  RocksDbServer server(sim, stack, machine, server_config);

  // The analytics tenant has no server object; bare reuseport sockets on
  // its port are enough for its policy to dispatch real traffic.
  ReuseportGroup* analytics_group = stack.GetOrCreateGroup(9001);
  for (int i = 0; i < 4; ++i) {
    analytics_group->AddSocket(256);
  }

  auto make_gen = [&](uint16_t port, double rate) {
    LoadGenConfig gen_config;
    gen_config.rate_rps = rate;
    gen_config.dst_port = port;
    gen_config.mix = {{ReqType::kGet, 0.99}, {ReqType::kScan, 0.01}};
    return std::make_unique<LoadGenerator>(sim, stack, gen_config);
  };
  auto rocksdb_gen = make_gen(9000, 50'000);
  auto analytics_gen = make_gen(9001, 10'000);
  rocksdb_gen->Start(100 * kMillisecond);
  analytics_gen->Start(100 * kMillisecond);
  sim.RunUntil(100 * kMillisecond);

  // --- the syrupctl surface ------------------------------------------------

  if (command == "analyze") {
    // The deployment-wide map-interference report: who reads/writes each
    // map across every attached program, plus hygiene findings. Exit 1
    // when any error-severity finding exists (CI gates on this).
    const DeploymentAnalysis analysis = syrupd.AnalyzeDeployments();
    if (argc > 2 && std::strcmp(argv[2], "--json") == 0) {
      std::printf("%s\n", analysis.ToJson().c_str());
      return analysis.HasErrors() ? 1 : 0;
    }
    std::printf("== map interference ==\n");
    auto print_list = [](const char* role,
                         const std::vector<std::string>& progs) {
      if (progs.empty()) {
        return;
      }
      std::printf("    %s:", role);
      for (const std::string& p : progs) {
        std::printf(" %s", p.c_str());
      }
      std::printf("\n");
    };
    for (const MapInterferenceRow& row : analysis.rows) {
      std::printf("  %s\n", row.map.c_str());
      print_list("readers", row.readers);
      print_list("writers", row.writers);
      print_list("atomics", row.atomics);
    }
    std::printf("\n== findings ==\n");
    size_t errors = 0;
    size_t warnings = 0;
    for (const InterferenceFinding& f : analysis.findings) {
      if (f.level == InterferenceFinding::Level::kError) ++errors;
      if (f.level == InterferenceFinding::Level::kWarning) ++warnings;
      std::printf("  %s [%s]%s%s: %s\n",
                  std::string(InterferenceLevelName(f.level)).c_str(),
                  f.category.c_str(), f.map.empty() ? "" : " map=",
                  f.map.c_str(), f.detail.c_str());
    }
    std::printf("analyze: %zu error(s), %zu warning(s), %zu info\n", errors,
                warnings, analysis.findings.size() - errors - warnings);
    return analysis.HasErrors() ? 1 : 0;
  }

  if (command == "stats") {
    // The entire observability tree: every app, hook, and metric the
    // daemon accounted during the run (docs/OBSERVABILITY.md schema).
    std::printf("%s\n", syrupd.StatsSnapshot().ToJson().c_str());
    return 0;
  }

  if (command == "flow-cache") {
    // The typed FlowCacheConfig knob surface plus the per-hook cache
    // counters it drives (flow_cache.* under {"syrupd", <hook>}).
    const FlowCacheConfig& config = syrupd.flow_cache_config();
    std::printf("== flow cache config ==\n");
    std::printf("  enabled=%s capacity=%zu admission=%s adaptive=%s\n",
                config.enabled ? "true" : "false", config.capacity,
                config.admission ? "true" : "false",
                config.adaptive ? "true" : "false");
    std::printf("\n== per-hook cache counters ==\n");
    const obs::Snapshot snapshot = syrupd.StatsSnapshot();
    for (size_t i = 0; i < kNumHooks; ++i) {
      const Hook hook = HookFromIndex(i);
      if (!IsPacketHook(hook)) {
        continue;
      }
      const std::string name(HookName(hook));
      std::printf(
          "  %-14s hits=%llu misses=%llu invalidations=%llu "
          "uncacheable=%llu evictions=%llu admission_rejects=%llu "
          "resizes=%llu capacity=%lld\n",
          name.c_str(),
          static_cast<unsigned long long>(
              snapshot.CounterValue("syrupd", name, "flow_cache.hits")),
          static_cast<unsigned long long>(
              snapshot.CounterValue("syrupd", name, "flow_cache.misses")),
          static_cast<unsigned long long>(snapshot.CounterValue(
              "syrupd", name, "flow_cache.invalidations")),
          static_cast<unsigned long long>(snapshot.CounterValue(
              "syrupd", name, "flow_cache.uncacheable")),
          static_cast<unsigned long long>(snapshot.CounterValue(
              "syrupd", name, "flow_cache.evictions")),
          static_cast<unsigned long long>(snapshot.CounterValue(
              "syrupd", name, "flow_cache.admission_rejects")),
          static_cast<unsigned long long>(
              snapshot.CounterValue("syrupd", name, "flow_cache.resizes")),
          static_cast<long long>(
              snapshot.GaugeValue("syrupd", name, "flow_cache.capacity")));
    }
    return 0;
  }

  if (command == "exec-mode") {
    // Requested vs effective: the daemon compiles for its requested mode,
    // but the policy.exec_mode gauge records the tier each deployment
    // actually runs on (native silently degrades to compiled when the JIT
    // cannot handle the host or the program).
    std::printf("requested: %s\n",
                std::string(bpf::ExecModeName(syrupd.exec_mode())).c_str());
    std::printf("\n== per-deployment effective tier ==\n");
    const obs::Snapshot snapshot = syrupd.StatsSnapshot();
    for (const DeploymentInfo& d : syrupd.ListDeployments()) {
      const std::string hook(HookName(d.hook));
      const auto effective = static_cast<bpf::ExecMode>(
          snapshot.GaugeValue(d.app_name, hook, "policy.exec_mode"));
      std::printf("  app=%-10s hook=%-14s policy=%-12s tier=%s",
                  d.app_name.c_str(), hook.c_str(), d.policy_name.c_str(),
                  std::string(bpf::ExecModeName(effective)).c_str());
      if (effective == bpf::ExecMode::kNative) {
        std::printf(" jit_code_bytes=%lld jit_ns=%lld",
                    static_cast<long long>(snapshot.GaugeValue(
                        d.app_name, hook, "policy.jit_code_bytes")),
                    static_cast<long long>(snapshot.GaugeValue(
                        d.app_name, hook, "policy.jit_ns")));
      }
      std::printf("\n");
    }
    return 0;
  }

  std::printf("== deployments ==\n");
  for (const DeploymentInfo& d : syrupd.ListDeployments()) {
    std::printf("  app=%-10s port=%-6u hook=%-14s policy=%s\n",
                d.app_name.c_str(), d.port,
                std::string(HookName(d.hook)).c_str(),
                d.policy_name.c_str());
  }

  std::printf("\n== pinned maps ==\n");
  for (const std::string& path : syrupd.registry().ListPaths()) {
    auto map = syrupd.registry().Open(path, 1000);
    if (!map.ok()) {
      continue;
    }
    const MapSpec& spec = (*map)->spec();
    std::printf("  %-32s type=%-10s key=%uB value=%uB entries=%u live=%u\n",
                path.c_str(), std::string(MapTypeName(spec.type)).c_str(),
                spec.key_size, spec.value_size, spec.max_entries,
                (*map)->Size());
  }

  std::printf("\n== map dump: /syrup/rocksdb/token_map ==\n");
  tokens.map()->Visit([](const void* key, void* value) {
    uint32_t k;
    std::memcpy(&k, key, sizeof(k));
    std::printf("  user %u -> %llu tokens\n", k,
                static_cast<unsigned long long>(Map::AtomicLoad(value)));
  });

  std::printf("\n== map dump: /syrup/rocksdb/scan_map (socket states) ==\n");
  auto scan = syrupd.registry().Open("/syrup/rocksdb/scan_map", 1000);
  scan.value()->Visit([](const void* key, void* value) {
    uint32_t k;
    std::memcpy(&k, key, sizeof(k));
    const uint64_t type = Map::AtomicLoad(value);
    std::printf("  socket %u -> %s\n", k,
                type == static_cast<uint64_t>(ReqType::kScan) ? "SCAN"
                                                              : "GET");
  });

  std::printf("\n== dispatch stats ==\n");
  std::printf("  socket_select: dispatched=%llu pass_through=%llu\n",
              static_cast<unsigned long long>(
                  syrupd.dispatch_stats(Hook::kSocketSelect).dispatched),
              static_cast<unsigned long long>(
                  syrupd.dispatch_stats(Hook::kSocketSelect).no_policy));
  std::printf("\n(run `%s stats` for the full metrics tree as JSON)\n",
              argv[0]);
  return 0;
}
