// syrupctl: bpftool-style introspection of a live Syrup deployment.
//
// Demonstrates the operator surface: list attached policies, list pinned
// maps, and dump map contents — the observability a resource manager
// (paper §3.2) builds on. Runs against a small in-process deployment since
// the whole system is a library.
//
// Build & run:  ./build/examples/syrupctl
#include <cstdio>
#include <cstring>

#include "src/apps/loadgen.h"
#include "src/apps/rocksdb_server.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"
#include "src/syrup.h"

int main() {
  using namespace syrup;
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = 4;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack);

  // A deployment to inspect: one app with SCAN Avoid at socket-select and
  // a token policy file at XDP_SKB.
  const AppId app = syrupd.RegisterApp("rocksdb", 1000, 9000).value();
  SyrupClient client(syrupd, app);
  (void)client.syr_deploy_policy(ScanAvoidPolicyAsm(4), Hook::kSocketSelect);
  (void)client.syr_deploy_policy(TokenPolicyAsm(), Hook::kXdpSkb);
  auto token_fd = client.syr_map_open("/syrup/rocksdb/token_map").value();
  (void)client.syr_map_update_elem(token_fd, /*user=*/1, 35);
  (void)client.syr_map_update_elem(token_fd, /*user=*/2, 7);

  Machine machine(sim, 4);
  PinnedScheduler scheduler(machine);
  machine.SetScheduler(&scheduler);
  RocksDbConfig server_config;
  server_config.num_threads = 4;
  server_config.scan_map =
      syrupd.registry().Open("/syrup/rocksdb/scan_map", 1000).value();
  RocksDbServer server(sim, stack, machine, server_config);

  LoadGenConfig gen_config;
  gen_config.rate_rps = 50'000;
  gen_config.dst_port = 9000;
  gen_config.mix = {{ReqType::kGet, 0.99}, {ReqType::kScan, 0.01}};
  LoadGenerator gen(sim, stack, gen_config);
  gen.Start(100 * kMillisecond);
  sim.RunUntil(100 * kMillisecond);

  // --- the syrupctl surface ------------------------------------------------

  std::printf("== deployments ==\n");
  for (const DeploymentInfo& d : syrupd.ListDeployments()) {
    std::printf("  app=%-10s port=%-6u hook=%-14s policy=%s\n",
                d.app_name.c_str(), d.port,
                std::string(HookName(d.hook)).c_str(),
                d.policy_name.c_str());
  }

  std::printf("\n== pinned maps ==\n");
  for (const std::string& path : syrupd.registry().ListPaths()) {
    auto map = syrupd.registry().Open(path, 1000);
    if (!map.ok()) {
      continue;
    }
    const MapSpec& spec = (*map)->spec();
    std::printf("  %-32s type=%-10s key=%uB value=%uB entries=%u live=%u\n",
                path.c_str(), std::string(MapTypeName(spec.type)).c_str(),
                spec.key_size, spec.value_size, spec.max_entries,
                (*map)->Size());
  }

  std::printf("\n== map dump: /syrup/rocksdb/token_map ==\n");
  auto tokens = syrupd.registry().Open("/syrup/rocksdb/token_map", 1000);
  tokens.value()->Visit([](const void* key, void* value) {
    uint32_t k;
    std::memcpy(&k, key, sizeof(k));
    std::printf("  user %u -> %llu tokens\n", k,
                static_cast<unsigned long long>(Map::AtomicLoad(value)));
  });

  std::printf("\n== map dump: /syrup/rocksdb/scan_map (socket states) ==\n");
  auto scan = syrupd.registry().Open("/syrup/rocksdb/scan_map", 1000);
  scan.value()->Visit([](const void* key, void* value) {
    uint32_t k;
    std::memcpy(&k, key, sizeof(k));
    const uint64_t type = Map::AtomicLoad(value);
    std::printf("  socket %u -> %s\n", k,
                type == static_cast<uint64_t>(ReqType::kScan) ? "SCAN"
                                                              : "GET");
  });

  std::printf("\n== dispatch stats ==\n");
  std::printf("  socket_select: dispatched=%llu pass_through=%llu\n",
              static_cast<unsigned long long>(
                  syrupd.dispatch_stats(Hook::kSocketSelect).dispatched),
              static_cast<unsigned long long>(
                  syrupd.dispatch_stats(Hook::kSocketSelect).no_policy));
  return 0;
}
