// Quickstart: deploy your first Syrup policy.
//
// This walks the paper's Fig. 3 workflow end to end on the simulated host:
//   1. write a scheduling policy as a `schedule` matching function
//      (a policy file in VM assembly),
//   2. hand it to syrupd with DeployPolicy(<policy>, <hook>) — the
//      returned PolicyHandle owns the deployment,
//   3. watch it fix the kernel's hash-based socket imbalance.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <utility>

#include "src/apps/loadgen.h"
#include "src/apps/rocksdb_server.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"

namespace {

// The Fig. 5a round-robin policy, as an untrusted policy file. `schedule`
// receives (pkt_start, pkt_end) in r1/r2 and returns an executor index —
// here an index into the app's socket executor map.
constexpr char kRoundRobinPolicy[] = R"(
.name my_round_robin
.ctx packet
.map rr_state array 4 8 1       ; one u64 cell holding the rotating index
  mov r6, 0
  stxw [r10-4], r6
  ldmapfd r1, rr_state
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jne r0, 0, have
  mov r0, PASS                  ; map miss: fall back to the kernel default
  exit
have:
  ldxdw r6, [r0+0]
  add r6, 1
  stxdw [r0+0], r6
  mod r6, 6                     ; six sockets
  mov r0, r6
  exit
)";

struct RunResult {
  double p99_us;
  uint64_t drops;
};

RunResult RunWorkload(bool deploy_policy) {
  using namespace syrup;
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = 6;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack);

  // An application registers with syrupd; its UDP port is the isolation key.
  const AppId app = syrupd.RegisterApp("quickstart", /*uid=*/1000,
                                       /*port=*/9000).value();
  SyrupClient client(syrupd, app);

  PolicyHandle deployed;  // owns the deployment; detaches when it dies
  if (deploy_policy) {
    // syrupd assembles the policy file, creates & pins its maps, runs the
    // verifier, and attaches it behind the per-port dispatcher.
    auto handle = client.DeployPolicy(kRoundRobinPolicy, Hook::kSocketSelect);
    if (!handle.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   handle.status().ToString().c_str());
      std::exit(1);
    }
    deployed = std::move(*handle);
    std::printf("deployed policy, prog id %d\n", deployed.prog_id());
  }

  // A 6-thread RocksDB-style server (one SO_REUSEPORT socket per thread).
  Machine machine(sim, 6);
  PinnedScheduler scheduler(machine);
  machine.SetScheduler(&scheduler);
  RocksDbConfig server_config;
  RocksDbServer server(sim, stack, machine, server_config);

  // Open-loop clients: 350k GET/s over 50 flows.
  LoadGenConfig gen_config;
  gen_config.rate_rps = 350'000;
  gen_config.dst_port = 9000;
  LoadGenerator gen(sim, stack, gen_config);
  gen.Start(1 * kSecond);
  sim.RunUntil(1 * kSecond + 50 * kMillisecond);

  return RunResult{
      static_cast<double>(server.overall_latency().Percentile(99)) / 1000.0,
      stack.stats().TotalDrops()};
}

}  // namespace

int main() {
  std::printf("== without Syrup (kernel 5-tuple hash picks the socket) ==\n");
  const RunResult vanilla = RunWorkload(/*deploy_policy=*/false);
  std::printf("p99 latency: %.1f us, dropped datagrams: %llu\n\n",
              vanilla.p99_us, static_cast<unsigned long long>(vanilla.drops));

  std::printf("== with the Syrup round-robin policy at socket-select ==\n");
  const RunResult syrup = RunWorkload(/*deploy_policy=*/true);
  std::printf("p99 latency: %.1f us, dropped datagrams: %llu\n\n",
              syrup.p99_us, static_cast<unsigned long long>(syrup.drops));

  std::printf("ten lines of policy -> %.0fx lower p99 at this load\n",
              vanilla.p99_us / syrup.p99_us);
  return 0;
}
