; Variable-offset header parse (RackSched-style L4 steering).
; Byte 5 carries an option length; the 4-byte steering key sits after the
; options, at pkt[len + 4]. The offset is data-dependent, so a
; constant-only verifier has to reject this program — the range-tracking
; verifier proves it safe from the `and r4, 31` mask plus the 40-byte
; bounds guard (max byte touched: 31 + 4 + 4 = 39).
; Try it:  ./build/examples/syrupctl lint examples/policies/var_header.s
.name var_header
.ctx packet
  mov r3, r1
  add r3, 40
  jgt r3, r2, pass       ; need the whole 40-byte header area
  ldxb r4, [r1+5]        ; option length byte
  and r4, 31             ; verifier: r4 in [0, 31]
  mov r5, r1
  add r5, r4             ; variable-offset cursor into the header
  ldxw r6, [r5+4]        ; key at [len+4, len+8)
  mod r6, 4
  mov r0, r6
  exit
pass:
  mov r0, PASS
  exit
