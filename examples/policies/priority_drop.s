; Example: drop best-effort traffic (user id != 1) under pressure signaled
; through a shared map, otherwise pass everything through.
;   key 0 of pressure_map: 0 = calm, 1 = shed best-effort load
.name priority_drop
.ctx packet
.map pressure_map array 4 8 1
  mov r3, r1
  add r3, 20
  jgt r3, r2, pass          ; runt packet
  ldxw r6, [r1+16]          ; user id
  jeq r6, 1, pass           ; user 1 is latency-sensitive: always admit
  mov r7, 0
  stxw [r10-4], r7
  ldmapfd r1, pressure_map
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, pass
  ldxdw r7, [r0+0]
  jne r7, 0, shed
pass:
  mov r0, PASS
  exit
shed:
  mov r0, DROP
  exit
