; Round-robin socket selection (paper Fig. 5a).
; Try it:  ./build/examples/policy_playground examples/policies/round_robin.s
.name round_robin
.ctx packet
.map rr_state array 4 8 1
  mov r6, 0
  stxw [r10-4], r6
  ldmapfd r1, rr_state
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jne r0, 0, have
  mov r0, PASS
  exit
have:
  ldxdw r6, [r0+0]
  add r6, 1
  stxdw [r0+0], r6
  mod r6, 6
  mov r0, r6
  exit
