; Deliberately unsafe: reads packet bytes without checking pkt_end first.
; The verifier must reject this — try it through the playground.
.name broken_no_bounds_check
.ctx packet
  ldxdw r0, [r1+8]
  exit
