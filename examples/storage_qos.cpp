// Storage QoS (paper §6.1): the same Syrup policies that schedule packets
// schedule IO — here protecting a latency-critical tenant's flash reads
// from a best-effort tenant's write flood, ReFlex-style.
//
// Build & run:  ./build/examples/storage_qos
#include <cstdio>
#include <functional>
#include <memory>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"
#include "src/storage/io_scheduler.h"

namespace {

using namespace syrup;

struct Outcome {
  double lc_p90_us;
  double lc_p99_us;
  uint64_t be_iops;
};

Outcome Run(std::shared_ptr<PacketPolicy> policy, const char* label,
            std::shared_ptr<Map> be_tokens = nullptr,
            uint64_t tokens_per_epoch = 0) {
  Simulator sim;
  NvmeDevice device(sim, NvmeConfig{});
  IoScheduler scheduler(device);
  scheduler.SetPolicy(std::move(policy));

  // Token agent: refill the best-effort bucket every 10ms epoch.
  std::shared_ptr<std::function<void()>> replenish;
  if (be_tokens != nullptr) {
    replenish = std::make_shared<std::function<void()>>();
    *replenish = [&sim, be_tokens, tokens_per_epoch,
                  weak_self =
                      std::weak_ptr<std::function<void()>>(replenish)]() {
      (void)be_tokens->UpdateU64(2, tokens_per_epoch);
      if (auto self = weak_self.lock()) {
        sim.ScheduleAfter(10 * kMillisecond, *self);
      }
    };
    sim.ScheduleAfter(10 * kMillisecond, *replenish);
  }

  Histogram lc_latency;
  uint64_t be_done = 0;
  device.SetCompletionCallback([&](const IoRequest& request, Time when) {
    if (request.tenant_id == 1) {
      lc_latency.Record(when - request.submit_time);
    } else {
      ++be_done;
    }
  });

  // Deterministic interleaved load: tenant 1 reads 4K every 25us (40k
  // IOPS); tenant 2 writes 64K every 200us (5k IOPS).
  Rng rng(1);
  uint64_t id = 0;
  for (Time t = 0; t < 1 * kSecond; t += 25 * kMicrosecond) {
    sim.ScheduleAt(t + 1, [&, t]() {
      IoRequest read;
      read.tenant_id = 1;
      read.op = IoOp::kRead;
      read.req_id = ++id;
      read.submit_time = sim.Now();
      (void)scheduler.Submit(read);
    });
    if (t % (200 * kMicrosecond) == 0) {
      sim.ScheduleAt(t + 2, [&]() {
        IoRequest write;
        write.tenant_id = 2;
        write.op = IoOp::kWrite;
        write.num_blocks = 16;
        write.req_id = ++id;
        write.submit_time = sim.Now();
        (void)scheduler.Submit(write);
      });
    }
  }
  // Bounded horizon: the token agent reschedules itself forever.
  sim.RunUntil(1 * kSecond + 100 * kMillisecond);
  const double p90 = static_cast<double>(lc_latency.Percentile(90)) / 1000.0;
  const double p99 = static_cast<double>(lc_latency.Percentile(99)) / 1000.0;
  std::printf("%-28s LC read p90 %7.1f us  p99 %7.1f us   BE writes done "
              "%llu\n", label, p90, p99,
              static_cast<unsigned long long>(be_done));
  return {p90, p99, be_done};
}

}  // namespace

int main() {
  std::printf("two tenants on one flash device (8 queues): 40k IOPS of 4K "
              "reads vs 5k IOPS of 64K writes\n\n");

  const Outcome none = Run(nullptr, "no policy (round robin):");

  // The Fig. 5d SITA policy, written for sockets, isolates writes (the
  // long class) on queue 0 — deployed on the storage hook unchanged.
  const Outcome sita = Run(std::make_shared<SitaPolicy>(8),
                           "SITA (write isolation):");

  // The §3.4 token policy caps the best-effort tenant at 2k IOPS.
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 8;
  auto tokens = CreateMap(spec).value();
  (void)tokens->UpdateU64(2, 20);  // 2k IOPS in 10ms epochs
  const Outcome token =
      Run(std::make_shared<TokenPolicy>(tokens),
          "token (BE budget 2k/s):", tokens, /*tokens_per_epoch=*/20);

  std::printf(
      "\nSITA isolates writes on one queue and fixes the tail outright "
      "(p99 %.0fx lower).\nThe token policy thins the interference "
      "(p90 %.1fx lower) but round-robin placement\nstill lets the "
      "admitted writes poison the p99 — queue partitioning, not just "
      "admission\ncontrol, is what this workload needs. Same policies, "
      "different hook, real tradeoffs.\n",
      none.lc_p99_us / sita.lc_p99_us,
      token.lc_p90_us > 0 ? none.lc_p90_us / token.lc_p90_us : 1.0);
  return 0;
}
