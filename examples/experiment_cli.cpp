// Experiment CLI: run any RocksDB-style experiment from the command line.
//
// Usage:
//   experiment_cli [--policy vanilla|rr|scan_avoid|sita]
//                  [--sched pinned|cfs|ghost]
//                  [--load RPS] [--get-fraction F] [--threads N] [--cores N]
//                  [--seconds S] [--seed S] [--bytecode] [--late-binding]
//                  [--stats-json]
//                  [--shards N] [--lookahead-us US] [--pin]
//                  [--cross-traffic F]
//
// --stats-json additionally prints the daemon's full metrics snapshot
// (Syrupd::StatsSnapshot(), docs/OBSERVABILITY.md schema) after the run.
//
// --shards N runs the experiment on the sharded parallel engine
// (src/sim/sharded.h): N replicated hosts, one per worker thread, with
// --cross-traffic of each shard's load served east-west by the next shard.
// --shards 1 is bit-identical to the default single-engine run.
// --lookahead-us sets the conservative sync window; --pin pins worker
// threads to CPUs.
//
// Examples:
//   experiment_cli --policy sita --load 250000 --get-fraction 0.995
//   experiment_cli --policy scan_avoid --sched ghost --threads 36 --cores 6 \
//                  --get-fraction 0.5 --load 8000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/experiments.h"

namespace {

using namespace syrup;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--policy vanilla|rr|scan_avoid|sita] "
               "[--sched pinned|cfs|ghost]\n"
               "          [--load RPS] [--get-fraction F] [--threads N] "
               "[--cores N]\n"
               "          [--seconds S] [--seed S] [--bytecode] "
               "[--late-binding] [--stats-json]\n"
               "          [--shards N] [--lookahead-us US] [--pin] "
               "[--cross-traffic F]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  RocksDbExperimentConfig config;
  config.load_rps = 200'000;
  bool stats_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      const std::string value = next();
      if (value == "vanilla") {
        config.socket_policy = SocketPolicyKind::kVanilla;
      } else if (value == "rr") {
        config.socket_policy = SocketPolicyKind::kRoundRobin;
      } else if (value == "scan_avoid") {
        config.socket_policy = SocketPolicyKind::kScanAvoid;
      } else if (value == "sita") {
        config.socket_policy = SocketPolicyKind::kSita;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--sched") {
      const std::string value = next();
      if (value == "pinned") {
        config.thread_sched = ThreadSchedKind::kPinned;
      } else if (value == "cfs") {
        config.thread_sched = ThreadSchedKind::kCfs;
      } else if (value == "ghost") {
        config.thread_sched = ThreadSchedKind::kGhostGetPriority;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--load") {
      config.load_rps = std::atof(next());
    } else if (arg == "--get-fraction") {
      config.get_fraction = std::atof(next());
    } else if (arg == "--threads") {
      config.num_threads = std::atoi(next());
    } else if (arg == "--cores") {
      config.num_cores = std::atoi(next());
    } else if (arg == "--seconds") {
      config.measure = static_cast<Duration>(std::atof(next()) *
                                             static_cast<double>(kSecond));
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--bytecode") {
      config.use_bytecode = true;
    } else if (arg == "--late-binding") {
      config.late_binding = true;
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (arg == "--shards") {
      config.sharding.sim.shards = std::atoi(next());
    } else if (arg == "--lookahead-us") {
      config.sharding.sim.lookahead = static_cast<Duration>(
          std::atof(next()) * static_cast<double>(kMicrosecond));
    } else if (arg == "--pin") {
      config.sharding.sim.pinning = true;
    } else if (arg == "--cross-traffic") {
      config.sharding.cross_traffic = std::atof(next());
    } else {
      Usage(argv[0]);
    }
  }

  std::printf("policy=%s sched=%s load=%.0f get_fraction=%.3f threads=%d "
              "cores=%d%s%s\n",
              std::string(SocketPolicyName(config.socket_policy)).c_str(),
              config.thread_sched == ThreadSchedKind::kPinned  ? "pinned"
              : config.thread_sched == ThreadSchedKind::kCfs   ? "cfs"
                                                               : "ghost",
              config.load_rps, config.get_fraction, config.num_threads,
              config.num_cores, config.use_bytecode ? " [bytecode]" : "",
              config.late_binding ? " [late-binding]" : "");
  if (config.sharding.sim.shards >= 1) {
    std::printf("shards=%d lookahead=%.1fus pin=%d cross_traffic=%.3f\n",
                config.sharding.sim.shards,
                static_cast<double>(config.sharding.sim.lookahead) / 1000.0,
                config.sharding.sim.pinning ? 1 : 0,
                config.sharding.cross_traffic);
  }

  const RocksDbResult result = RunRocksDbExperiment(config);
  std::printf("throughput : %10.0f rps\n", result.throughput_rps);
  std::printf("p50        : %10.1f us\n", result.p50_us);
  std::printf("p99        : %10.1f us\n", result.p99_us);
  std::printf("p99 (GET)  : %10.1f us\n", result.p99_get_us);
  if (config.get_fraction < 1.0) {
    std::printf("p99 (SCAN) : %10.1f us\n", result.p99_scan_us);
  }
  std::printf("drops      : %10.3f %%\n", result.drop_fraction * 100);
  if (stats_json) {
    std::printf("%s\n", result.stats_json.c_str());
  }
  return 0;
}
