// Multi-tenancy & isolation (paper §3.5, §4.3).
//
// Two co-located applications each deploy their own socket-select policy
// through syrupd. The daemon's per-port dispatch guarantees each policy
// only ever schedules its own application's packets — including when one
// tenant deploys a hostile drop-everything policy, which hurts only itself.
//
// Build & run:  ./build/examples/multi_tenant
#include <cstdio>

#include "src/apps/loadgen.h"
#include "src/apps/rocksdb_server.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/policies/builtin.h"
#include "src/sched/pinned_scheduler.h"
#include "src/sim/simulator.h"

int main() {
  using namespace syrup;
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = 6;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack);

  // Tenant A: a well-behaved KV store on port 9000 with round robin. The
  // PolicyHandle keeps the deployment attached for the whole run.
  const AppId app_a = syrupd.RegisterApp("tenant_a", 1001, 9000).value();
  SyrupClient client_a(syrupd, app_a);
  auto policy_a = client_a.DeployPolicy(RoundRobinPolicyAsm(3),
                                        Hook::kSocketSelect);
  std::printf("tenant A deploy: %s\n", policy_a.ok() ? "ok" : "FAILED");

  // Tenant B: hostile — its policy drops every packet it schedules.
  const AppId app_b = syrupd.RegisterApp("tenant_b", 1002, 9001).value();
  SyrupClient client_b(syrupd, app_b);
  auto policy_b = client_b.DeployPolicy(R"(
.name drop_everything
.ctx packet
  mov r0, DROP
  exit
)", Hook::kSocketSelect);
  std::printf("tenant B deploy: %s\n", policy_b.ok() ? "ok" : "FAILED");

  // Tenant B also tries to steal tenant A's port and to open A's maps:
  // both are refused.
  std::printf("tenant B claims port 9000: %s\n",
              syrupd.AddPort(app_b, 9000).ToString().c_str());
  std::printf("tenant B opens A's pinned map: %s\n",
              client_b.syr_map_open("/syrup/tenant_a/rr_state")
                  .status()
                  .ToString()
                  .c_str());

  // Both servers run on the shared machine.
  Machine machine_a(sim, 3);
  PinnedScheduler sched_a(machine_a);
  machine_a.SetScheduler(&sched_a);
  RocksDbConfig config_a;
  config_a.num_threads = 3;
  config_a.port = 9000;
  RocksDbServer server_a(sim, stack, machine_a, config_a);

  Machine machine_b(sim, 3);
  PinnedScheduler sched_b(machine_b);
  machine_b.SetScheduler(&sched_b);
  RocksDbConfig config_b;
  config_b.num_threads = 3;
  config_b.port = 9001;
  RocksDbServer server_b(sim, stack, machine_b, config_b);

  LoadGenConfig gen_a;
  gen_a.rate_rps = 100'000;
  gen_a.dst_port = 9000;
  LoadGenerator generator_a(sim, stack, gen_a);
  LoadGenConfig gen_b;
  gen_b.rate_rps = 100'000;
  gen_b.dst_port = 9001;
  gen_b.seed = 77;
  LoadGenerator generator_b(sim, stack, gen_b);

  generator_a.Start(500 * kMillisecond);
  generator_b.Start(500 * kMillisecond);
  sim.RunUntil(600 * kMillisecond);

  std::printf("\nafter 0.5s at 100k RPS each:\n");
  std::printf("tenant A served %llu requests (p99 %.1f us)\n",
              static_cast<unsigned long long>(server_a.completed()),
              static_cast<double>(server_a.overall_latency().Percentile(99)) /
                  1000.0);
  std::printf("tenant B served %llu requests; its policy dropped %llu\n",
              static_cast<unsigned long long>(server_b.completed()),
              static_cast<unsigned long long>(stack.stats().policy_drops));
  std::printf("=> B's hostile policy only ever saw (and killed) B's own "
              "traffic.\n");
  return 0;
}
