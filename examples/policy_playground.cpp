// Policy playground: assemble, verify, and dry-run a Syrup policy file.
//
// Usage:
//   ./build/examples/policy_playground            # run the built-in demo
//   ./build/examples/policy_playground policy.s   # try your own policy
//
// The tool shows exactly what syrupd does before a policy reaches a hook —
// including the verifier rejecting unsafe programs with a precise reason —
// then executes accepted policies against a batch of sample packets.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/bpf/assembler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/verifier.h"
#include "src/common/decision.h"
#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/net/packet.h"

namespace {

constexpr char kDemoPolicy[] = R"(
; Demo: steer SCANs (type 2) to socket 0, spread GETs over sockets 1-5.
.name demo_sita
.ctx packet
.map state array 4 8 1
  mov r3, r1
  add r3, 16
  jgt r3, r2, pass
  ldxdw r4, [r1+8]
  jne r4, 2, get
  mov r0, 0
  exit
get:
  mov r6, 0
  stxw [r10-4], r6
  ldmapfd r1, state
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, pass
  ldxdw r6, [r0+0]
  add r6, 1
  stxdw [r0+0], r6
  mod r6, 5
  add r6, 1
  mov r0, r6
  exit
pass:
  mov r0, PASS
  exit
)";

// A broken policy, to demo the verifier: reads packet bytes with no bounds
// check (this is what an exploit attempt or an honest bug looks like).
constexpr char kBrokenPolicy[] = R"(
.name oops_no_bounds_check
.ctx packet
  ldxdw r0, [r1+8]
  exit
)";

void TryPolicy(const std::string& source) {
  using namespace syrup;
  auto assembled = bpf::Assemble(source);
  if (!assembled.ok()) {
    std::printf("  assembler: %s\n", assembled.status().ToString().c_str());
    return;
  }
  std::printf("  assembled '%s': %zu instructions, %zu map(s)\n",
              assembled->name.c_str(), assembled->insns.size(),
              assembled->map_slots.size());

  auto program = std::make_shared<bpf::Program>();
  program->name = assembled->name;
  program->insns = assembled->insns;
  for (const bpf::MapSlot& slot : assembled->map_slots) {
    if (slot.is_extern) {
      std::printf("  (extern map '%s' bound to a fresh map for the dry "
                  "run)\n", slot.name.c_str());
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 1024;
      program->maps.push_back(CreateMap(spec).value());
      continue;
    }
    program->maps.push_back(CreateMap(slot.spec).value());
  }

  bpf::VerifierStats stats;
  const Status verdict =
      bpf::Verify(*program, bpf::ProgramContext::kPacket, {}, &stats);
  if (!verdict.ok()) {
    std::printf("  REJECTED by verifier:\n    %s\n",
                verdict.ToString().c_str());
    return;
  }
  std::printf("  verified OK (%llu abstract instructions explored)\n",
              static_cast<unsigned long long>(stats.visited_insns));

  // Dry-run against sample packets.
  Rng rng(1);
  bpf::ExecEnv env;
  env.random_u32 = [&rng]() { return static_cast<uint32_t>(rng.Next()); };
  env.ktime_ns = []() { return 0u; };
  bpf::Interpreter interp(env);
  std::printf("  dry run:\n");
  for (int i = 0; i < 8; ++i) {
    Packet pkt;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + i);
    pkt.tuple.dst_port = 9000;
    const ReqType type = i % 4 == 3 ? ReqType::kScan : ReqType::kGet;
    pkt.SetHeader(type, 1, static_cast<uint32_t>(rng.Next()), i, 0);
    auto result = interp.Run(
        *program, reinterpret_cast<uint64_t>(pkt.wire.data()),
        reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize), true);
    if (!result.ok()) {
      std::printf("    pkt %d: runtime fault: %s\n", i,
                  result.status().ToString().c_str());
      continue;
    }
    const auto decision = static_cast<uint32_t>(result->r0);
    std::string text = decision == syrup::kPass   ? "PASS"
                       : decision == syrup::kDrop ? "DROP"
                                           : std::to_string(decision);
    std::printf("    pkt %d (%-4s) -> executor %s   [%llu insns]\n", i,
                type == ReqType::kScan ? "SCAN" : "GET", text.c_str(),
                static_cast<unsigned long long>(result->insns_executed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::printf("policy file %s:\n", argv[1]);
    TryPolicy(buffer.str());
    return 0;
  }
  std::printf("1) a correct policy (SITA-style):\n");
  TryPolicy(kDemoPolicy);
  std::printf("\n2) a broken policy (missing bounds check):\n");
  TryPolicy(kBrokenPolicy);
  std::printf("\ntip: pass a policy file path to try your own.\n");
  return 0;
}
