// Cross-layer scheduling (paper §5.3): a SCAN-Avoid policy at the Socket
// Select hook cooperates with a GET-priority policy at the Thread Scheduler
// hook (deployed via the ghOSt-style agent), communicating with the
// application through Syrup Maps.
//
// Build & run:  ./build/examples/cross_layer
#include <cstdio>

#include "src/apps/experiments.h"

int main() {
  using namespace syrup;
  std::printf("RocksDB, 50%% GET / 50%% SCAN, 36 threads on 6 cores, "
              "8000 RPS\n\n");

  auto run = [](SocketPolicyKind socket_policy, ThreadSchedKind thread_sched,
                const char* label) {
    RocksDbExperimentConfig config;
    config.socket_policy = socket_policy;
    config.thread_sched = thread_sched;
    config.get_fraction = 0.5;
    config.num_threads = 36;
    config.num_cores = 6;
    config.load_rps = 8'000;
    config.measure = 800 * kMillisecond;
    const RocksDbResult result = RunRocksDbExperiment(config);
    std::printf("%-34s GET p99 %8.1f us   SCAN p99 %9.1f us\n", label,
                result.p99_get_us, result.p99_scan_us);
    return result;
  };

  const RocksDbResult request_only =
      run(SocketPolicyKind::kScanAvoid, ThreadSchedKind::kCfs,
          "SCAN Avoid only (CFS threads):");
  const RocksDbResult thread_only =
      run(SocketPolicyKind::kVanilla, ThreadSchedKind::kGhostGetPriority,
          "Thread scheduling only (ghOSt):");
  const RocksDbResult both =
      run(SocketPolicyKind::kScanAvoid, ThreadSchedKind::kGhostGetPriority,
          "Both layers together:");

  std::printf(
      "\ncombined GET p99 is %.0fx better than request-only and %.0fx "
      "better than thread-only:\n"
      "the socket layer keeps GETs from queueing behind SCANs, and the "
      "thread layer keeps\n"
      "GET threads from waiting behind SCAN threads for a core.\n",
      request_only.p99_get_us / both.p99_get_us,
      thread_only.p99_get_us / both.p99_get_us);
  return 0;
}
